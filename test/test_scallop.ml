(* Scallop system tests: the controller/agent/data-plane stack end to end,
   including the feedback-isolation property of §5.3 and the migration
   machinery of §6.1. *)

module Addr = Scallop_util.Addr
module Rng = Scallop_util.Rng
module Engine = Netsim.Engine
module Network = Netsim.Network
module Link = Netsim.Link
module Dd = Av1.Dd

let fast = { Link.default with rate_bps = infinity; propagation_ns = 100_000 }

type stack = {
  engine : Engine.t;
  rng : Rng.t;
  network : Network.t;
  dp : Scallop.Dataplane.t;
  agent : Scallop.Switch_agent.t;
  controller : Scallop.Controller.t;
}

let make ?(seed = 1) () =
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let network = Network.create engine (Rng.split rng) in
  let sfu_ip = Addr.ip_of_string "10.0.0.1" in
  Network.add_host network ~ip:sfu_ip ~uplink:fast ~downlink:fast ();
  let dp = Scallop.Dataplane.create engine network ~ip:sfu_ip () in
  let agent = Scallop.Switch_agent.create engine dp () in
  let controller =
    Scallop.Controller.create engine network (Rng.split rng) ~agents:[ (agent, dp) ] ()
  in
  { engine; rng; network; dp; agent; controller }

let add_client st ~index ?(uplink = Link.default) ?(downlink = Link.default) () =
  let ip = Addr.ip_of_string (Printf.sprintf "10.0.1.%d" (index + 1)) in
  Network.add_host st.network ~ip ~uplink ~downlink ();
  Webrtc.Client.create st.engine st.network (Rng.split st.rng)
    (Webrtc.Client.default_config ~ip)

let receiver_of st pid ~from =
  Scallop.Controller.recv_connection st.controller pid ~from
  |> Option.get |> Webrtc.Client.receiver |> Option.get

let run st s = Engine.run st.engine ~until:(Engine.now st.engine + Engine.sec s)

let meeting st n =
  let mid = Scallop.Controller.create_meeting st.controller in
  let members =
    List.init n (fun i ->
        let c = add_client st ~index:i () in
        (Scallop.Controller.join st.controller mid c ~send_media:true, c))
  in
  (mid, members)

(* --- core media path --------------------------------------------------------- *)

let full_mesh_decodes () =
  let st = make () in
  let _, members = meeting st 4 in
  run st 6.0;
  let pids = List.map fst members in
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          if p <> q then begin
            let rx = receiver_of st p ~from:q in
            Alcotest.(check bool) "decoding near 30fps" true
              (Codec.Video_receiver.frames_decoded rx > 140);
            Alcotest.(check int) "no freezes" 0 (Codec.Video_receiver.freezes rx)
          end)
        pids)
    pids

let audio_flows () =
  let st = make () in
  let _, members = meeting st 3 in
  run st 4.0;
  let p0 = fst (List.hd members) and p1 = fst (List.nth members 1) in
  let conn = Option.get (Scallop.Controller.recv_connection st.controller p0 ~from:p1) in
  Alcotest.(check bool) "audio packets" true (Webrtc.Client.audio_packets_received conn > 150)

let receive_only_participant () =
  let st = make () in
  let mid = Scallop.Controller.create_meeting st.controller in
  let sender = add_client st ~index:0 () in
  let watcher = add_client st ~index:1 () in
  let sp = Scallop.Controller.join st.controller mid sender ~send_media:true in
  let wp = Scallop.Controller.join st.controller mid watcher ~send_media:false in
  run st 4.0;
  let rx = receiver_of st wp ~from:sp in
  Alcotest.(check bool) "watcher decodes" true (Codec.Video_receiver.frames_decoded rx > 90);
  Alcotest.(check bool) "no reverse stream" true
    (Scallop.Controller.recv_connection st.controller sp ~from:wp = None)

(* --- §5.3: feedback isolation -------------------------------------------------- *)

let feedback_isolation () =
  (* One slow receiver must NOT drag the sender's bitrate down for everyone:
     the agent forwards only the best downlink's REMB, and serves the slow
     receiver by dropping layers instead. *)
  let st = make ~seed:5 () in
  let mid = Scallop.Controller.create_meeting st.controller in
  let sender = add_client st ~index:0 () in
  let fast_rx = add_client st ~index:1 () in
  let slow_rx =
    add_client st ~index:2 ~downlink:{ Link.default with rate_bps = 1.2e6 } ()
  in
  let sp = Scallop.Controller.join st.controller mid sender ~send_media:true in
  let fp = Scallop.Controller.join st.controller mid fast_rx ~send_media:false in
  let lp = Scallop.Controller.join st.controller mid slow_rx ~send_media:false in
  run st 25.0;
  (* the sender still encodes near its configured max *)
  let send_conn = Option.get (Scallop.Controller.send_connection st.controller sp) in
  Alcotest.(check bool) "sender bitrate preserved" true
    (Webrtc.Client.video_bitrate send_conn > 2_000_000);
  (* the fast receiver still enjoys full quality *)
  let fast_decoded = Codec.Video_receiver.frames_decoded (receiver_of st fp ~from:sp) in
  Alcotest.(check bool) "fast receiver at full rate" true (fast_decoded > 600);
  (* the slow receiver was adapted down by the agent, not starved *)
  let agent_mid = Scallop.Controller.agent_meeting_id st.controller mid in
  let target = Scallop.Switch_agent.current_target st.agent ~meeting:agent_mid ~sender:sp ~receiver:lp in
  Alcotest.(check bool) "slow receiver reduced" true (target <> Dd.DT_30fps);
  Alcotest.(check int) "slow receiver not frozen" 0
    (Codec.Video_receiver.freezes (receiver_of st lp ~from:sp))

let best_downlink_selected () =
  let st = make ~seed:6 () in
  let _, _ = meeting st 3 in
  run st 5.0;
  (* every sender stream forwards REMBs from exactly one selected leg; the
     analysis ran (rembs were seen) and at most a few switches happened *)
  Alcotest.(check bool) "rembs analyzed" true ((Scallop.Switch_agent.stats st.agent).rembs_analyzed > 10)

(* --- migration ------------------------------------------------------------------- *)

let migration_two_party_to_nra () =
  let st = make () in
  let mid = Scallop.Controller.create_meeting st.controller in
  let c0 = add_client st ~index:0 () in
  let c1 = add_client st ~index:1 () in
  let p0 = Scallop.Controller.join st.controller mid c0 ~send_media:true in
  let _p1 = Scallop.Controller.join st.controller mid c1 ~send_media:true in
  run st 3.0;
  let agent_mid = Scallop.Controller.agent_meeting_id st.controller mid in
  Alcotest.(check bool) "two-party design" true
    (Scallop.Switch_agent.meeting_design st.agent agent_mid = Scallop.Trees.Two_party);
  (* third joins mid-call; media to existing receivers must not freeze *)
  let c2 = add_client st ~index:2 () in
  let p2 = Scallop.Controller.join st.controller mid c2 ~send_media:true in
  run st 4.0;
  Alcotest.(check bool) "migrated off two-party" true
    (Scallop.Switch_agent.meeting_design st.agent agent_mid <> Scallop.Trees.Two_party);
  let rx = receiver_of st p2 ~from:p0 in
  Alcotest.(check bool) "new member decodes" true (Codec.Video_receiver.frames_decoded rx > 90);
  Alcotest.(check int) "no freeze across migration" 0 (Codec.Video_receiver.freezes rx)

let leave_cleans_up () =
  let st = make () in
  let mid, members = meeting st 3 in
  run st 2.0;
  let leaver = fst (List.nth members 2) in
  Scallop.Controller.leave st.controller leaver;
  run st 2.0;
  Alcotest.(check int) "two members left" 2
    (List.length (Scallop.Controller.meeting_participants st.controller mid));
  (* survivors keep decoding *)
  let p0 = fst (List.hd members) and p1 = fst (List.nth members 1) in
  let rx = receiver_of st p0 ~from:p1 in
  Alcotest.(check bool) "survivors fine" true (Codec.Video_receiver.frames_decoded rx > 90)

(* --- control plane --------------------------------------------------------------- *)

let stun_answered_by_agent () =
  let st = make () in
  let _ = meeting st 2 in
  run st 6.0;
  Alcotest.(check bool) "stun handled" true ((Scallop.Switch_agent.stats st.agent).stun_answered >= 4);
  (* clients measured an RTT through the switch *)
  ()

let sdp_exchanged () =
  let st = make () in
  let _ = meeting st 3 in
  (* per joiner: own offer+answer, plus a leg offer+answer per existing
     sender in each direction *)
  Alcotest.(check bool) "sdp messages flowed" true ((Scallop.Controller.stats st.controller).sdp_messages >= 10)

let packet_split_dominated_by_dataplane () =
  let st = make () in
  let _ = meeting st 3 in
  run st 8.0;
  let c = Scallop.Dataplane.ingress_counters st.dp in
  let dp = c.rtp_audio_pkts + c.rtp_video_pkts + c.rtcp_sr_sdes_pkts in
  let cpu = c.rtcp_rr_pkts + c.rtcp_remb_pkts + c.stun_pkts + c.rtp_av1_ds_pkts in
  let frac = float_of_int dp /. float_of_int (dp + cpu) in
  Alcotest.(check bool) "over 94% in data plane" true (frac > 0.94)

let agent_never_touches_media () =
  let st = make () in
  let _ = meeting st 3 in
  run st 5.0;
  (* CPU-port bytes are a sliver of total switch traffic *)
  let cpu = float_of_int (Scallop.Dataplane.cpu_bytes st.dp) in
  let egress = float_of_int (Scallop.Dataplane.egress_bytes st.dp) in
  Alcotest.(check bool) "cpu sees under 2% of bytes" true (cpu /. (cpu +. egress) < 0.02)

(* --- the 8 header-authentication extension ------------------------------------- *)

let header_auth_extension () =
  let engine = Engine.create () in
  let rng = Rng.create 21 in
  let network = Network.create engine (Rng.split rng) in
  let sfu_ip = Addr.ip_of_string "10.0.0.1" in
  Network.add_host network ~ip:sfu_ip ~uplink:fast ~downlink:fast ();
  let dp = Scallop.Dataplane.create engine network ~ip:sfu_ip ~header_auth:true () in
  let agent = Scallop.Switch_agent.create engine dp () in
  let controller =
    Scallop.Controller.create engine network (Rng.split rng) ~agents:[ (agent, dp) ] ()
  in
  let mid = Scallop.Controller.create_meeting controller in
  let clients =
    List.init 2 (fun i ->
        let ip = Addr.ip_of_string (Printf.sprintf "10.0.4.%d" (i + 1)) in
        Network.add_host network ~ip ();
        Webrtc.Client.create engine network (Rng.split rng) (Webrtc.Client.default_config ~ip))
  in
  let pids = List.map (fun c -> Scallop.Controller.join controller mid c ~send_media:true) clients in
  Engine.run engine ~until:(Engine.sec 4.0);
  Alcotest.(check bool) "enabled" true (Scallop.Dataplane.header_auth_enabled dp);
  (* every *media* replica gets an HMAC; RTCP forwarded upstream does not *)
  Alcotest.(check bool) "media replicas authenticated" true
    (Scallop.Dataplane.headers_authenticated dp > 1_000
    && Scallop.Dataplane.headers_authenticated dp <= Scallop.Dataplane.egress_pkts dp);
  (* media still decodes; the extra pipeline latency is invisible to QoE *)
  let rx =
    Scallop.Controller.recv_connection controller (List.hd pids) ~from:(List.nth pids 1)
    |> Option.get |> Webrtc.Client.receiver |> Option.get
  in
  Alcotest.(check bool) "decodes with auth" true (Codec.Video_receiver.frames_decoded rx > 90);
  (* the resource model accounts for the crypto table *)
  let program = Scallop.Dataplane.resource_program dp in
  Alcotest.(check bool) "hmac table present" true
    (List.exists
       (fun (t : Tofino.Resources.table_spec) -> t.Tofino.Resources.t_name = "hmac_keys")
       program.Tofino.Resources.tables)

(* Correlated (bursty) loss on a sender's uplink: whole frames vanish at
   once — the decoder must recover via NACK/PLI without ever freezing on a
   duplicate (the §6.2 priority). *)
let bursty_loss_robustness () =
  let st = make ~seed:15 () in
  let mid = Scallop.Controller.create_meeting st.controller in
  let sender =
    add_client st ~index:0
      ~uplink:{ Link.default with loss_model = Some (Link.Gilbert { avg = 0.05; burst_len = 8.0 }) }
      ()
  in
  let watcher = add_client st ~index:1 () in
  let sp = Scallop.Controller.join st.controller mid sender ~send_media:true in
  let wp = Scallop.Controller.join st.controller mid watcher ~send_media:false in
  run st 20.0;
  let rx = receiver_of st wp ~from:sp in
  Alcotest.(check int) "no freezes under bursts" 0 (Codec.Video_receiver.freezes rx);
  Alcotest.(check bool) "few unrecoverable frames" true
    (Codec.Video_receiver.frames_undecodable rx < 60);
  Alcotest.(check bool) "most frames recovered" true
    (Codec.Video_receiver.frames_decoded rx > 420)

(* --- multi-switch management (Appendix A framework) ---------------------------- *)

let multi_switch_placement () =
  let engine = Engine.create () in
  let rng = Rng.create 13 in
  let network = Network.create engine (Rng.split rng) in
  let switch ip_str =
    let ip = Addr.ip_of_string ip_str in
    Network.add_host network ~ip ~uplink:fast ~downlink:fast ();
    let dp = Scallop.Dataplane.create engine network ~ip () in
    let agent = Scallop.Switch_agent.create engine dp () in
    (agent, dp)
  in
  let s1 = switch "10.0.0.1" and s2 = switch "10.0.0.2" in
  let controller =
    Scallop.Controller.create engine network (Rng.split rng) ~agents:[ s1; s2 ] ()
  in
  Alcotest.(check int) "two switches" 2 (Scallop.Controller.switch_count controller);
  (* three meetings round-robin across the two switches *)
  let meetings = List.init 3 (fun _ -> Scallop.Controller.create_meeting controller) in
  let client_idx = ref 0 in
  let members =
    List.map
      (fun mid ->
        List.init 2 (fun _ ->
            let ip = Addr.ip_of_string (Printf.sprintf "10.0.3.%d" (!client_idx + 1)) in
            incr client_idx;
            Network.add_host network ~ip ();
            let c =
              Webrtc.Client.create engine network (Rng.split rng)
                (Webrtc.Client.default_config ~ip)
            in
            (Scallop.Controller.join controller mid c ~send_media:true, c)))
      meetings
  in
  let dp_of mid = Scallop.Dataplane.ip (Scallop.Controller.meeting_switch controller mid) in
  Alcotest.(check bool) "meeting 0 and 1 on different switches" true
    (dp_of (List.nth meetings 0) <> dp_of (List.nth meetings 1));
  Alcotest.(check bool) "round robin wraps" true
    (dp_of (List.nth meetings 0) = dp_of (List.nth meetings 2));
  Engine.run engine ~until:(Engine.sec 5.0);
  (* every meeting's media flows on its own switch *)
  List.iter
    (fun pair ->
      match pair with
      | [ (p0, c0); (p1, _) ] ->
          ignore p1;
          let rx =
            Webrtc.Client.connections c0 |> List.filter_map Webrtc.Client.receiver
          in
          ignore p0;
          List.iter
            (fun r ->
              Alcotest.(check bool) "decodes on its switch" true
                (Codec.Video_receiver.frames_decoded r > 120))
            rx
      | _ -> Alcotest.fail "expected pairs")
    members

(* Screen sharing: a second stream bundle appears mid-call and disappears
   again — the controller trigger the paper lists alongside join/leave. *)
let screen_share_lifecycle () =
  let st = make () in
  let _mid, members = meeting st 3 in
  let pids = List.map fst members in
  let sharer = List.hd pids and viewer = List.nth pids 1 in
  run st 3.0;
  Alcotest.(check bool) "no screen before" true
    (Scallop.Controller.screen_connection st.controller viewer ~from:sharer = None);
  Scallop.Controller.start_screen_share st.controller sharer;
  run st 5.0;
  let conn =
    Option.get (Scallop.Controller.screen_connection st.controller viewer ~from:sharer)
  in
  let rx = Option.get (Webrtc.Client.receiver conn) in
  Alcotest.(check bool) "screen decodes" true (Codec.Video_receiver.frames_decoded rx > 120);
  Alcotest.(check int) "no freezes" 0 (Codec.Video_receiver.freezes rx);
  (* camera keeps flowing alongside the screen *)
  let cam_rx = receiver_of st viewer ~from:sharer in
  Alcotest.(check bool) "camera unaffected" true
    (Codec.Video_receiver.frames_decoded cam_rx > 200);
  (* stop: the stream and its state disappear *)
  let decoded_at_stop = Codec.Video_receiver.frames_decoded rx in
  Scallop.Controller.stop_screen_share st.controller sharer;
  run st 3.0;
  Alcotest.(check bool) "screen conn gone" true
    (Scallop.Controller.screen_connection st.controller viewer ~from:sharer = None);
  Alcotest.(check bool) "no more frames" true
    (Codec.Video_receiver.frames_decoded rx - decoded_at_stop < 10);
  (* sharing can restart cleanly *)
  Scallop.Controller.start_screen_share st.controller sharer;
  run st 3.0;
  let conn2 =
    Option.get (Scallop.Controller.screen_connection st.controller viewer ~from:sharer)
  in
  let rx2 = Option.get (Webrtc.Client.receiver conn2) in
  Alcotest.(check bool) "restart works" true (Codec.Video_receiver.frames_decoded rx2 > 60)

(* Simulcast: the switch splices each receiver onto the rendition its
   downlink affords; both receivers see one continuous stream. *)
let simulcast_meeting () =
  let st = make ~seed:44 () in
  let mid = Scallop.Controller.create_meeting st.controller in
  let sender = add_client st ~index:0 () in
  let fast = add_client st ~index:1 () in
  let slow = add_client st ~index:2 ~downlink:{ Link.default with rate_bps = 1.2e6; queue_bytes = 1_000_000 } () in
  let sp = Scallop.Controller.join ~simulcast:true st.controller mid sender ~send_media:true in
  let fp = Scallop.Controller.join st.controller mid fast ~send_media:false in
  let lp = Scallop.Controller.join st.controller mid slow ~send_media:false in
  run st 25.0;
  let rx_of pid =
    Scallop.Controller.recv_connection st.controller pid ~from:sp
    |> Option.get |> Webrtc.Client.receiver |> Option.get
  in
  let fast_rx = rx_of fp and slow_rx = rx_of lp in
  (* both decode at full frame rate with no freezes, despite the splice *)
  Alcotest.(check bool) "fast decodes" true (Codec.Video_receiver.frames_decoded fast_rx > 600);
  Alcotest.(check bool) "slow decodes" true (Codec.Video_receiver.frames_decoded slow_rx > 600);
  Alcotest.(check int) "fast no freezes" 0 (Codec.Video_receiver.freezes fast_rx);
  Alcotest.(check int) "slow no freezes" 0 (Codec.Video_receiver.freezes slow_rx);
  (* the slow receiver was spliced onto a cheaper rendition *)
  Alcotest.(check bool) "slow gets fewer bytes" true
    (float_of_int (Codec.Video_receiver.bytes_received slow_rx)
    < 0.6 *. float_of_int (Codec.Video_receiver.bytes_received fast_rx))

(* Two simulcast senders in one meeting: rendition SSRC spaces must not
   collide with each other or with anyone's audio. *)
let two_simulcast_senders () =
  let st = make ~seed:46 () in
  let mid = Scallop.Controller.create_meeting st.controller in
  let a = add_client st ~index:0 () in
  let b = add_client st ~index:1 () in
  let c = add_client st ~index:2 () in
  let pa = Scallop.Controller.join ~simulcast:true st.controller mid a ~send_media:true in
  let pb = Scallop.Controller.join ~simulcast:true st.controller mid b ~send_media:true in
  let pc = Scallop.Controller.join st.controller mid c ~send_media:false in
  run st 10.0;
  List.iter
    (fun (p, from) ->
      let rx =
        Scallop.Controller.recv_connection st.controller p ~from
        |> Option.get |> Webrtc.Client.receiver |> Option.get
      in
      Alcotest.(check bool) "decodes" true (Codec.Video_receiver.frames_decoded rx > 250);
      Alcotest.(check int) "no freezes" 0 (Codec.Video_receiver.freezes rx))
    [ (pc, pa); (pc, pb); (pa, pb); (pb, pa) ]

(* A meeting split across two switches: senders on each side must reach
   receivers on the other through the cascade relay, and a constrained
   receiver is adapted by *its own* switch without degrading anyone else. *)
let cascading_meeting () =
  let engine = Engine.create () in
  let rng = Rng.create 33 in
  let network = Network.create engine (Rng.split rng) in
  let switch ip_str =
    let ip = Addr.ip_of_string ip_str in
    Network.add_host network ~ip ~uplink:fast ~downlink:fast ();
    let dp = Scallop.Dataplane.create engine network ~ip () in
    let agent = Scallop.Switch_agent.create engine dp () in
    (agent, dp)
  in
  let (a1, dp1) = switch "10.0.0.1" and (a2, dp2) = switch "10.0.0.2" in
  let controller =
    Scallop.Controller.create engine network (Rng.split rng)
      ~agents:[ (a1, dp1); (a2, dp2) ] ()
  in
  let mid = Scallop.Controller.create_meeting controller in
  let mk i downlink =
    let ip = Addr.ip_of_string (Printf.sprintf "10.0.5.%d" (i + 1)) in
    Network.add_host network ~ip ~downlink ();
    Webrtc.Client.create engine network (Rng.split rng) (Webrtc.Client.default_config ~ip)
  in
  (* two participants per switch; the last one has a weak downlink *)
  let c0 = mk 0 Link.default and c1 = mk 1 Link.default in
  let c2 = mk 2 Link.default in
  let c3 = mk 3 { Link.default with rate_bps = 4.0e6; queue_bytes = 1_000_000 } in
  let p0 = Scallop.Controller.join ~home:0 controller mid c0 ~send_media:true in
  let _p1 = Scallop.Controller.join ~home:0 controller mid c1 ~send_media:true in
  let p2 = Scallop.Controller.join ~home:1 controller mid c2 ~send_media:true in
  let p3 = Scallop.Controller.join ~home:1 controller mid c3 ~send_media:false in
  Alcotest.(check int) "homes recorded" 1 (Scallop.Controller.participant_home controller p2);
  Engine.run engine ~until:(Engine.sec 25.0);
  (* media crosses the cascade in both directions *)
  let rx_of pid ~from =
    Scallop.Controller.recv_connection controller pid ~from
    |> Option.get |> Webrtc.Client.receiver |> Option.get
  in
  Alcotest.(check bool) "switch-1 receiver gets switch-0 sender" true
    (Codec.Video_receiver.frames_decoded (rx_of p2 ~from:p0) > 600);
  Alcotest.(check bool) "switch-0 receiver gets switch-1 sender" true
    (Codec.Video_receiver.frames_decoded (rx_of p0 ~from:p2) > 600);
  Alcotest.(check int) "no freezes across the cascade" 0
    (Codec.Video_receiver.freezes (rx_of p2 ~from:p0));
  (* both switches actually carried media *)
  Alcotest.(check bool) "switch 0 forwarded" true (Scallop.Dataplane.egress_pkts dp1 > 1000);
  Alcotest.(check bool) "switch 1 forwarded" true (Scallop.Dataplane.egress_pkts dp2 > 1000);
  (* the weak receiver was adapted by its own switch, while the healthy
     cross-switch receiver kept decoding at full rate *)
  let p3_frames = Codec.Video_receiver.frames_decoded (rx_of p3 ~from:p0) in
  let p2_frames = Codec.Video_receiver.frames_decoded (rx_of p2 ~from:p0) in
  Alcotest.(check bool) "constrained receiver adapted, not starved" true
    (p3_frames > 150 && p3_frames < p2_frames);
  Alcotest.(check int) "adapted without freezing" 0
    (Codec.Video_receiver.freezes (rx_of p3 ~from:p0))

(* A 2.5 Mb/s stream wraps its 16-bit sequence space every ~4 minutes; the
   rewriter, the NACK translation and the receiver's tracking must all
   survive the wrap (they operate in mod-2^16 arithmetic throughout). *)
let sequence_wraparound () =
  let st = make ~seed:27 () in
  let mid = Scallop.Controller.create_meeting st.controller in
  let sender = add_client st ~index:0 () in
  let slow =
    add_client st ~index:1
      ~downlink:{ Link.default with rate_bps = 2.0e6; queue_bytes = 1_000_000 }
      ()
  in
  let watcher = add_client st ~index:2 () in
  let sp = Scallop.Controller.join st.controller mid sender ~send_media:true in
  let lp = Scallop.Controller.join st.controller mid slow ~send_media:false in
  let _wp = Scallop.Controller.join st.controller mid watcher ~send_media:false in
  (* ~280 pps: the sequence space wraps twice in 500 simulated seconds,
     while the slow leg keeps an active rewrite offset *)
  run st 500.0;
  let rx = receiver_of st lp ~from:sp in
  Alcotest.(check int) "no freezes across wraps" 0 (Codec.Video_receiver.freezes rx);
  Alcotest.(check bool) "kept decoding after the wrap" true
    (Codec.Video_receiver.frames_decoded rx > 3200)

(* Monkey test: random joins, leaves and screen-share toggles while media
   flows. Invariants: no exception escapes, nobody freezes, every live
   receiver pair still decodes. *)
let churn_monkey () =
  let st = make ~seed:31 () in
  let mid = Scallop.Controller.create_meeting st.controller in
  let rng = Rng.create 5151 in
  let next_index = ref 0 in
  let live = ref [] in
  let join () =
    if List.length !live < 7 then begin
      let i = !next_index in
      incr next_index;
      let c = add_client st ~index:i () in
      let pid = Scallop.Controller.join st.controller mid c ~send_media:true in
      live := (pid, c, ref false) :: !live
    end
  in
  join ();
  join ();
  for _step = 1 to 40 do
    run st 0.7;
    match Rng.int rng 5 with
    | 0 -> join ()
    | 1 -> (
        (* somebody leaves (keep at least two) *)
        match !live with
        | (pid, _, sharing) :: rest when List.length !live > 2 ->
            if !sharing then Scallop.Controller.stop_screen_share st.controller pid;
            Scallop.Controller.leave st.controller pid;
            live := rest
        | _ -> ())
    | 2 -> (
        match !live with
        | (pid, _, sharing) :: _ when not !sharing ->
            Scallop.Controller.start_screen_share st.controller pid;
            sharing := true
        | _ -> ())
    | 3 -> (
        match !live with
        | (pid, _, sharing) :: _ when !sharing ->
            Scallop.Controller.stop_screen_share st.controller pid;
            sharing := false
        | _ -> ())
    | _ -> ()
  done;
  run st 5.0;
  (* every surviving pair still decodes fresh frames *)
  let pids = List.map (fun (p, _, _) -> p) !live in
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          if p <> q then begin
            let rx = receiver_of st p ~from:q in
            Alcotest.(check int) "no freezes through churn" 0
              (Codec.Video_receiver.freezes rx)
          end)
        pids)
    pids;
  Alcotest.(check bool) "churn actually happened" true (!next_index > 4)

(* --- recovery paths ----------------------------------------------------------------- *)

let nack_recovery_through_rewrite () =
  (* lossy uplink: receivers NACK rewritten seqs; the data plane translates
     them back so the sender's retransmission buffer can serve them *)
  let st = make ~seed:9 () in
  let mid = Scallop.Controller.create_meeting st.controller in
  let sender = add_client st ~index:0 ~uplink:{ Link.default with loss = 0.02 } () in
  let rx_client = add_client st ~index:1 () in
  let watcher = add_client st ~index:2 () in
  let sp = Scallop.Controller.join st.controller mid sender ~send_media:true in
  let rp = Scallop.Controller.join st.controller mid rx_client ~send_media:false in
  let _wp = Scallop.Controller.join st.controller mid watcher ~send_media:false in
  run st 12.0;
  let send_conn = Option.get (Scallop.Controller.send_connection st.controller sp) in
  Alcotest.(check bool) "sender retransmitted" true
    (Webrtc.Client.retransmissions send_conn > 0);
  let rx = receiver_of st rp ~from:sp in
  Alcotest.(check bool) "still decodes most frames" true
    (Codec.Video_receiver.frames_decoded rx > 250)

let () =
  Alcotest.run "scallop"
    [
      ( "media path",
        [
          Alcotest.test_case "full mesh decodes" `Quick full_mesh_decodes;
          Alcotest.test_case "audio flows" `Quick audio_flows;
          Alcotest.test_case "receive-only participant" `Quick receive_only_participant;
        ] );
      ( "feedback (5.3)",
        [
          Alcotest.test_case "isolation" `Quick feedback_isolation;
          Alcotest.test_case "best downlink selected" `Quick best_downlink_selected;
        ] );
      ( "migration",
        [
          Alcotest.test_case "two-party to NRA" `Quick migration_two_party_to_nra;
          Alcotest.test_case "leave cleans up" `Quick leave_cleans_up;
        ] );
      ( "control plane",
        [
          Alcotest.test_case "stun answered" `Quick stun_answered_by_agent;
          Alcotest.test_case "sdp exchanged" `Quick sdp_exchanged;
          Alcotest.test_case "packet split" `Quick packet_split_dominated_by_dataplane;
          Alcotest.test_case "agent media-free" `Quick agent_never_touches_media;
        ] );
      ( "long-haul",
        [
          Alcotest.test_case "sequence wraparound" `Slow sequence_wraparound;
          Alcotest.test_case "churn monkey" `Slow churn_monkey;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "nack through rewrite" `Quick nack_recovery_through_rewrite;
          Alcotest.test_case "bursty uplink loss" `Quick bursty_loss_robustness;
        ] );
      ( "multi-switch",
        [ Alcotest.test_case "round-robin placement" `Quick multi_switch_placement ] );
      ( "extensions",
        [
          Alcotest.test_case "header authentication (8)" `Quick header_auth_extension;
          Alcotest.test_case "cascading (appendix A)" `Quick cascading_meeting;
          Alcotest.test_case "screen share start/stop" `Quick screen_share_lifecycle;
          Alcotest.test_case "simulcast splicing" `Quick simulcast_meeting;
          Alcotest.test_case "two simulcast senders" `Quick two_simulcast_senders;
        ] );
    ]
