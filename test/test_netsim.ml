(* Discrete-event engine, link, network and CPU-queue tests. *)

module Rng = Scallop_util.Rng
module Addr = Scallop_util.Addr
module Eventq = Netsim.Eventq
module Engine = Netsim.Engine
module Dgram = Netsim.Dgram
module Link = Netsim.Link
module Network = Netsim.Network
module Cpu_queue = Netsim.Cpu_queue

(* --- event queue ----------------------------------------------------------- *)

let eventq_ordering () =
  let q = Eventq.create () in
  Eventq.push q ~time:30 "c";
  Eventq.push q ~time:10 "a";
  Eventq.push q ~time:20 "b";
  let pop () = snd (Option.get (Eventq.pop q)) in
  Alcotest.(check string) "a" "a" (pop ());
  Alcotest.(check string) "b" "b" (pop ());
  Alcotest.(check string) "c" "c" (pop ());
  Alcotest.(check bool) "empty" true (Eventq.is_empty q)

let eventq_stable_ties () =
  let q = Eventq.create () in
  List.iter (fun v -> Eventq.push q ~time:5 v) [ "first"; "second"; "third" ];
  Alcotest.(check string) "fifo within same time" "first" (snd (Option.get (Eventq.pop q)));
  Alcotest.(check string) "fifo 2" "second" (snd (Option.get (Eventq.pop q)))

(* The tie-breaking contract (Eventq mli): ties fire in insertion order,
   [ready_count] sizes the tied set, and [pop_nth k] picks the k-th tied
   event — with [pop_nth 0] behaving exactly like [pop]. The explorer's
   permutation choice points are built on this. *)
let eventq_ready_count () =
  let q = Eventq.create () in
  Alcotest.(check int) "empty" 0 (Eventq.ready_count q);
  Eventq.push q ~time:10 "a";
  Eventq.push q ~time:10 "b";
  Eventq.push q ~time:20 "c";
  Alcotest.(check int) "two tied at min" 2 (Eventq.ready_count q);
  ignore (Eventq.pop q);
  Alcotest.(check int) "one left at min" 1 (Eventq.ready_count q);
  ignore (Eventq.pop q);
  Alcotest.(check int) "next stratum" 1 (Eventq.ready_count q)

let eventq_pop_nth () =
  let q = Eventq.create () in
  List.iter (fun v -> Eventq.push q ~time:5 v) [ "a"; "b"; "c" ];
  Eventq.push q ~time:9 "late";
  Alcotest.(check (option string))
    "out of range" None
    (Option.map snd (Eventq.pop_nth q 3));
  Alcotest.(check (option string))
    "nth picks by insertion order" (Some "b")
    (Option.map snd (Eventq.pop_nth q 1));
  Alcotest.(check (option string))
    "remaining shift down" (Some "c")
    (Option.map snd (Eventq.pop_nth q 1));
  Alcotest.(check (option string))
    "pop_nth 0 = pop" (Some "a")
    (Option.map snd (Eventq.pop_nth q 0));
  Alcotest.(check (option string))
    "later stratum untouched" (Some "late")
    (Option.map snd (Eventq.pop q))

let prop_eventq_pop_nth0_is_pop =
  QCheck.Test.make ~count:200 ~name:"pop_nth 0 behaves exactly like pop"
    QCheck.(list_of_size Gen.(1 -- 60) (int_bound 20))
    (fun times ->
      let a = Eventq.create () and b = Eventq.create () in
      List.iteri
        (fun i t ->
          Eventq.push a ~time:t i;
          Eventq.push b ~time:t i)
        times;
      let rec drain () =
        match (Eventq.pop a, Eventq.pop_nth b 0) with
        | None, None -> true
        | Some x, Some y -> x = y && drain ()
        | _ -> false
      in
      drain ())

let engine_chooser_permutes () =
  let engine = Engine.create () in
  let log = ref [] in
  let note v () = log := v :: !log in
  Engine.at engine ~time:10 (note "a");
  Engine.at engine ~time:10 (note "b");
  Engine.at engine ~time:10 (note "c");
  (* always pick the last tied event: c, b, a *)
  Engine.set_chooser engine (Some (fun ~ready -> ready - 1));
  Engine.run engine;
  Engine.set_chooser engine None;
  Alcotest.(check (list string)) "reverse order" [ "c"; "b"; "a" ] (List.rev !log)

let engine_chooser_default_and_fallback () =
  let run chooser =
    let engine = Engine.create () in
    let log = ref [] in
    let note v () = log := v :: !log in
    Engine.at engine ~time:10 (note "a");
    Engine.at engine ~time:10 (note "b");
    Engine.set_chooser engine chooser;
    Engine.run engine;
    List.rev !log
  in
  Alcotest.(check (list string))
    "no chooser: insertion order" [ "a"; "b" ] (run None);
  Alcotest.(check (list string))
    "out-of-range answer falls back to 0" [ "a"; "b" ]
    (run (Some (fun ~ready:_ -> 99)))

let prop_eventq_sorted =
  QCheck.Test.make ~count:200 ~name:"pops are time-sorted"
    QCheck.(list_of_size Gen.(1 -- 200) (int_bound 10_000))
    (fun times ->
      let q = Eventq.create () in
      List.iter (fun t -> Eventq.push q ~time:t t) times;
      let rec drain prev =
        match Eventq.pop q with
        | None -> true
        | Some (t, _) -> t >= prev && drain t
      in
      drain min_int)

(* The wheel window is ~8.4 ms; +20 ms lands in the heap spill. A tied run
   that lives in the heap — partly pushed before and partly after the near
   events drained — must still fire in insertion order once the window
   jumps forward and the run migrates back into a wheel bucket. *)
let eventq_spill_preserves_ties () =
  let q = Eventq.create () in
  let far = 20_000_000 in
  Eventq.push q ~time:5 "near";
  Eventq.push q ~time:far "h1";
  Eventq.push q ~time:far "h2";
  Alcotest.(check (option string)) "near first" (Some "near")
    (Option.map snd (Eventq.pop q));
  Eventq.push q ~time:far "h3";
  Alcotest.(check int) "migrated run counted" 3 (Eventq.ready_count q);
  Alcotest.(check (option string)) "pop_nth into migrated run" (Some "h2")
    (Option.map snd (Eventq.pop_nth q 1));
  Alcotest.(check (option string)) "insertion order kept" (Some "h1")
    (Option.map snd (Eventq.pop q));
  Alcotest.(check (option string)) "post-migration push last" (Some "h3")
    (Option.map snd (Eventq.pop q))

(* A push below the window base rebases the wheel, spilling entries that
   fall beyond the shrunk window to the heap. Ties split across that
   rebase (one entry spilled, one pushed straight to the heap) must still
   fire in insertion order. *)
let eventq_rebase_preserves_ties () =
  let q = Eventq.create () in
  Eventq.push q ~time:10_000_000 "a";
  Eventq.push q ~time:50 "early";  (* rebase: "a" spills to the heap *)
  Eventq.push q ~time:10_000_000 "b";
  Alcotest.(check (option string)) "rebased minimum" (Some "early")
    (Option.map snd (Eventq.pop q));
  Alcotest.(check (option string)) "spilled tie first" (Some "a")
    (Option.map snd (Eventq.pop q));
  Alcotest.(check (option string)) "heap tie second" (Some "b")
    (Option.map snd (Eventq.pop q));
  Alcotest.(check bool) "drained" true (Eventq.is_empty q)

(* Full behavioural equivalence against a sorted-list reference over
   random push/pop/pop_nth sequences whose times span many wheel windows
   (so heap spill, migration and the past-push rebase all trigger), with
   peek_time/ready_count/length checked after every op. *)
let prop_eventq_model =
  QCheck.Test.make ~count:200 ~name:"wheel+heap queue = sorted-list reference"
    QCheck.(list_of_size Gen.(1 -- 120) (pair (int_bound 5) (int_bound 30_000_000)))
    (fun ops ->
      let q = Eventq.create () in
      (* reference: (time, seq, v) kept sorted lexicographically *)
      let model = ref [] in
      let seq = ref 0 in
      let le (t1, s1, _) (t2, s2, _) = t1 < t2 || (t1 = t2 && s1 <= s2) in
      let model_insert e =
        let rec go = function
          | [] -> [ e ]
          | x :: rest -> if le e x then e :: x :: rest else x :: go rest
        in
        model := go !model
      in
      let model_pop_nth k =
        match !model with
        | [] -> None
        | (t0, _, _) :: _ ->
            (* remove the k-th entry of the equal-time head run, if any *)
            let rec go j l =
              match l with
              | (t, s, v) :: rest when t = t0 ->
                  if j = k then Some ((t, v), rest)
                  else
                    Option.map
                      (fun (r, rest') -> (r, (t, s, v) :: rest'))
                      (go (j + 1) rest)
              | _ -> None
            in
            Option.map
              (fun (r, m') ->
                model := m';
                r)
              (go 0 !model)
      in
      let ok = ref true in
      let expect _name a b = if a <> b then ok := false in
      List.iter
        (fun (tag, t) ->
          (match tag with
          | 0 | 1 | 2 ->
              incr seq;
              Eventq.push q ~time:t !seq;
              model_insert (t, !seq, !seq)
          | 3 ->
              let e =
                match !model with
                | [] -> None
                | (t, _, v) :: rest ->
                    model := rest;
                    Some (t, v)
              in
              expect "pop" e (Eventq.pop q)
          | _ -> expect "pop_nth" (model_pop_nth (t mod 4)) (Eventq.pop_nth q (t mod 4)));
          expect "length" (List.length !model) (Eventq.length q);
          expect "peek"
            (match !model with [] -> None | (t, _, _) :: _ -> Some t)
            (Eventq.peek_time q);
          let ready =
            match !model with
            | [] -> 0
            | (t0, _, _) :: _ -> List.length (List.filter (fun (t, _, _) -> t = t0) !model)
          in
          expect "ready_count" ready (Eventq.ready_count q))
        ops;
      !ok)

(* --- engine ------------------------------------------------------------------ *)

let engine_schedule_order () =
  let engine = Engine.create () in
  let log = ref [] in
  Engine.schedule engine ~after:20 (fun () -> log := 2 :: !log);
  Engine.schedule engine ~after:10 (fun () -> log := 1 :: !log);
  Engine.run engine;
  Alcotest.(check (list int)) "order" [ 2; 1 ] !log;
  Alcotest.(check int) "clock" 20 (Engine.now engine)

let engine_until () =
  let engine = Engine.create () in
  let fired = ref false in
  Engine.schedule engine ~after:100 (fun () -> fired := true);
  Engine.run engine ~until:50;
  Alcotest.(check bool) "not yet" false !fired;
  Alcotest.(check int) "clock advanced to until" 50 (Engine.now engine);
  Engine.run engine ~until:200;
  Alcotest.(check bool) "fired" true !fired

let engine_every_stops () =
  let engine = Engine.create () in
  let count = ref 0 in
  Engine.every engine ~interval:10 (fun () ->
      incr count;
      !count < 3);
  Engine.run engine;
  Alcotest.(check int) "three firings" 3 !count

let engine_nested_scheduling () =
  let engine = Engine.create () in
  let times = ref [] in
  Engine.schedule engine ~after:5 (fun () ->
      times := Engine.now engine :: !times;
      Engine.schedule engine ~after:5 (fun () -> times := Engine.now engine :: !times));
  Engine.run engine;
  Alcotest.(check (list int)) "nested" [ 10; 5 ] !times

let engine_rejects_past () =
  let engine = Engine.create () in
  Engine.schedule engine ~after:10 (fun () -> ());
  Engine.run engine;
  Alcotest.check_raises "past" (Invalid_argument "Engine.at: time in the past") (fun () ->
      Engine.at engine ~time:5 (fun () -> ()))

(* --- link ---------------------------------------------------------------------- *)

let a = Addr.v 1 100
let b = Addr.v 2 200
let dgram n = Dgram.v ~src:a ~dst:b (Bytes.create n)

let link_delivers_in_order () =
  let engine = Engine.create () in
  let seen = ref [] in
  let link =
    Link.create engine (Rng.create 1)
      { Link.default with rate_bps = 1e6; propagation_ns = 1000 }
      ~sink:(fun d -> seen := Bytes.length d.Dgram.payload :: !seen)
  in
  Link.send link (dgram 10);
  Link.send link (dgram 20);
  Engine.run engine;
  Alcotest.(check (list int)) "order" [ 20; 10 ] !seen

let link_serialization_delay () =
  let engine = Engine.create () in
  let arrival = ref 0 in
  let link =
    Link.create engine (Rng.create 1)
      { Link.default with rate_bps = 1e6; propagation_ns = 0 }
      ~sink:(fun _ -> arrival := Engine.now engine)
  in
  (* 1000 B payload + 42 B overhead = 1042 B = 8336 bits at 1 Mb/s *)
  Link.send link (dgram 1000);
  Engine.run engine;
  Alcotest.(check int) "serialization" 8336000 !arrival

let link_loss () =
  let engine = Engine.create () in
  let received = ref 0 in
  let link =
    Link.create engine (Rng.create 5)
      { Link.default with loss = 0.5; rate_bps = infinity }
      ~sink:(fun _ -> incr received)
  in
  for _ = 1 to 1000 do
    Link.send link (dgram 10)
  done;
  Engine.run engine;
  Alcotest.(check bool) "about half lost" true (!received > 400 && !received < 600);
  Alcotest.(check int) "accounting" 1000 (Link.delivered link + Link.dropped link)

let link_bursty_loss () =
  let engine = Engine.create () in
  let received = ref 0 in
  let link =
    Link.create engine (Rng.create 8)
      {
        Link.default with
        rate_bps = infinity;
        queue_bytes = max_int / 2;
        loss_model = Some (Link.Gilbert { avg = 0.2; burst_len = 5.0 });
      }
      ~sink:(fun _ -> incr received)
  in
  let n = 20_000 in
  for _ = 1 to n do
    Link.send link (dgram 10)
  done;
  Engine.run engine;
  let rate = 1.0 -. (float_of_int !received /. float_of_int n) in
  Alcotest.(check bool) "long-run rate near avg" true (rate > 0.15 && rate < 0.25);
  (* burstiness: consecutive losses must be far more common than under iid *)
  Alcotest.(check bool) "losses happened" true (Link.dropped link > 1000)

let link_queue_overflow () =
  let engine = Engine.create () in
  let link =
    Link.create engine (Rng.create 1)
      { Link.default with rate_bps = 1e3; queue_bytes = 2000 }
      ~sink:(fun _ -> ())
  in
  for _ = 1 to 10 do
    Link.send link (dgram 500)
  done;
  Alcotest.(check bool) "drops under overflow" true (Link.dropped link > 0)

let link_uniform_jitter_bounds () =
  let engine = Engine.create () in
  let samples = ref [] in
  let link =
    Link.create engine (Rng.create 3)
      { Link.default with rate_bps = infinity; propagation_ns = 1000; jitter = Link.Uniform 5000 }
      ~sink:(fun _ -> samples := Engine.now engine :: !samples)
  in
  for i = 0 to 499 do
    Engine.at engine ~time:(i * 100_000) (fun () -> Link.send link (dgram 10))
  done;
  Engine.run engine;
  (* each arrival is send time + 1000 + U[0,5000] *)
  List.iteri
    (fun i arrival ->
      let sent = (499 - i) * 100_000 in
      let extra = arrival - sent - 1000 in
      if extra < 0 || extra > 5000 then Alcotest.failf "jitter out of bounds: %d" extra)
    !samples

let link_heavy_tail_jitter () =
  let engine = Engine.create () in
  let stats = Scallop_util.Stats.Samples.create () in
  let link =
    Link.create engine (Rng.create 4)
      {
        Link.default with
        rate_bps = infinity;
        propagation_ns = 0;
        jitter = Link.Heavy_tail { median_ns = 2_000.0; sigma = 1.0 };
      }
      ~sink:(fun _ -> ())
  in
  (* sample the jitter distribution through arrival times *)
  for i = 0 to 1999 do
    let sent = i * 1_000_000 in
    Engine.at engine ~time:sent (fun () -> Link.send link (dgram 10))
  done;
  ignore stats;
  Engine.run engine;
  Alcotest.(check int) "all delivered" 2000 (Link.delivered link)

let link_dynamic_rate () =
  let engine = Engine.create () in
  let arrivals = ref [] in
  let link =
    Link.create engine (Rng.create 1)
      { Link.default with rate_bps = infinity; propagation_ns = 0 }
      ~sink:(fun _ -> arrivals := Engine.now engine :: !arrivals)
  in
  Link.send link (dgram 958);
  Engine.run engine;
  Link.set_rate link 1e6;
  Link.send link (dgram 958);
  Engine.run engine;
  match List.rev !arrivals with
  | [ first; second ] ->
      Alcotest.(check int) "infinite rate instant" 0 first;
      Alcotest.(check int) "throttled" 8000000 second
  | _ -> Alcotest.fail "expected two arrivals"

(* --- network ---------------------------------------------------------------------- *)

let network_routes () =
  let engine = Engine.create () in
  let net = Network.create engine (Rng.create 1) in
  Network.add_host net ~ip:1 ();
  Network.add_host net ~ip:2 ();
  let got = ref None in
  Network.bind net b (fun d -> got := Some d.Dgram.src);
  Network.send net (dgram 10);
  Engine.run engine;
  Alcotest.(check bool) "delivered with src" true (!got = Some a)

let network_wildcard_bind () =
  let engine = Engine.create () in
  let net = Network.create engine (Rng.create 1) in
  Network.add_host net ~ip:1 ();
  Network.add_host net ~ip:2 ();
  let ports = ref [] in
  Network.bind_host net ~ip:2 (fun d -> ports := d.Dgram.dst.Addr.port :: !ports);
  Network.send net (Dgram.v ~src:a ~dst:(Addr.v 2 1111) (Bytes.create 1));
  Network.send net (Dgram.v ~src:a ~dst:(Addr.v 2 2222) (Bytes.create 1));
  Engine.run engine;
  Alcotest.(check (list int)) "both ports" [ 2222; 1111 ] !ports

let network_exact_beats_wildcard () =
  let engine = Engine.create () in
  let net = Network.create engine (Rng.create 1) in
  Network.add_host net ~ip:1 ();
  Network.add_host net ~ip:2 ();
  let which = ref "" in
  Network.bind_host net ~ip:2 (fun _ -> which := "wildcard");
  Network.bind net b (fun _ -> which := "exact");
  Network.send net (dgram 5);
  Engine.run engine;
  Alcotest.(check string) "exact wins" "exact" !which

let network_unknown_host () =
  let engine = Engine.create () in
  let net = Network.create engine (Rng.create 1) in
  Network.add_host net ~ip:1 ();
  Network.send net (dgram 5) (* dst ip 2 not registered *);
  Engine.run engine;
  Alcotest.(check bool) "counted" true (Network.undeliverable net > 0)

(* --- cpu queue --------------------------------------------------------------------- *)

let cpu_config =
  {
    Cpu_queue.cores = 1;
    service_ns_per_packet = 1000;
    service_ns_per_byte = 0;
    spike_probability = 0.0;
    spike_mu = 0.0;
    spike_sigma = 0.1;
    max_queue_delay_ns = 1_000_000;
    wakeup_latency_ns = 0;
  }

let cpu_serializes_work () =
  let engine = Engine.create () in
  let cpu = Cpu_queue.create engine (Rng.create 1) cpu_config in
  let finish = ref [] in
  for _ = 1 to 3 do
    Cpu_queue.submit cpu ~size:100 (fun () -> finish := Engine.now engine :: !finish)
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "sequential on one core" [ 3000; 2000; 1000 ] !finish

let cpu_parallel_cores () =
  let engine = Engine.create () in
  let cpu = Cpu_queue.create engine (Rng.create 1) { cpu_config with cores = 3 } in
  let finish = ref [] in
  for _ = 1 to 3 do
    Cpu_queue.submit cpu ~size:100 (fun () -> finish := Engine.now engine :: !finish)
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "parallel" [ 1000; 1000; 1000 ] !finish

let cpu_overload_drops () =
  let engine = Engine.create () in
  let cpu = Cpu_queue.create engine (Rng.create 1) cpu_config in
  for _ = 1 to 2000 do
    Cpu_queue.submit cpu ~size:10 (fun () -> ())
  done;
  Alcotest.(check bool) "drops when backlog exceeds cap" true (Cpu_queue.dropped cpu > 0);
  Engine.run engine;
  Alcotest.(check int) "rest processed" (2000 - Cpu_queue.dropped cpu) (Cpu_queue.processed cpu)

let cpu_utilization_measure () =
  let engine = Engine.create () in
  let cpu = Cpu_queue.create engine (Rng.create 1) cpu_config in
  (* 500 packets x 1 us over 1 ms = 50% busy *)
  for _ = 1 to 500 do
    Cpu_queue.submit cpu ~size:1 (fun () -> ())
  done;
  Engine.run engine ~until:1_000_000;
  Alcotest.(check (float 0.01)) "utilization" 0.5 (Cpu_queue.utilization cpu)

let cpu_wakeup_latency () =
  let engine = Engine.create () in
  let cpu = Cpu_queue.create engine (Rng.create 1) { cpu_config with wakeup_latency_ns = 5000 } in
  let finish = ref 0 in
  Cpu_queue.submit cpu ~size:1 (fun () -> finish := Engine.now engine);
  Engine.run engine;
  Alcotest.(check int) "service + wakeup" 6000 !finish

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_eventq_sorted; prop_eventq_pop_nth0_is_pop; prop_eventq_model ]

let () =
  Alcotest.run "netsim"
    [
      ( "eventq",
        [
          Alcotest.test_case "ordering" `Quick eventq_ordering;
          Alcotest.test_case "stable ties" `Quick eventq_stable_ties;
          Alcotest.test_case "ready count" `Quick eventq_ready_count;
          Alcotest.test_case "pop nth" `Quick eventq_pop_nth;
          Alcotest.test_case "heap spill keeps ties" `Quick
            eventq_spill_preserves_ties;
          Alcotest.test_case "rebase keeps ties" `Quick
            eventq_rebase_preserves_ties;
        ] );
      ( "engine",
        [
          Alcotest.test_case "schedule order" `Quick engine_schedule_order;
          Alcotest.test_case "run until" `Quick engine_until;
          Alcotest.test_case "every stops" `Quick engine_every_stops;
          Alcotest.test_case "nested scheduling" `Quick engine_nested_scheduling;
          Alcotest.test_case "rejects past" `Quick engine_rejects_past;
          Alcotest.test_case "chooser permutes ties" `Quick engine_chooser_permutes;
          Alcotest.test_case "chooser default and fallback" `Quick
            engine_chooser_default_and_fallback;
        ] );
      ( "link",
        [
          Alcotest.test_case "in-order delivery" `Quick link_delivers_in_order;
          Alcotest.test_case "serialization delay" `Quick link_serialization_delay;
          Alcotest.test_case "loss" `Quick link_loss;
          Alcotest.test_case "queue overflow" `Quick link_queue_overflow;
          Alcotest.test_case "bursty loss" `Quick link_bursty_loss;
          Alcotest.test_case "uniform jitter bounds" `Quick link_uniform_jitter_bounds;
          Alcotest.test_case "heavy-tail jitter" `Quick link_heavy_tail_jitter;
          Alcotest.test_case "dynamic rate" `Quick link_dynamic_rate;
        ] );
      ( "network",
        [
          Alcotest.test_case "routes" `Quick network_routes;
          Alcotest.test_case "wildcard bind" `Quick network_wildcard_bind;
          Alcotest.test_case "exact beats wildcard" `Quick network_exact_beats_wildcard;
          Alcotest.test_case "unknown host" `Quick network_unknown_host;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "serializes work" `Quick cpu_serializes_work;
          Alcotest.test_case "parallel cores" `Quick cpu_parallel_cores;
          Alcotest.test_case "overload drops" `Quick cpu_overload_drops;
          Alcotest.test_case "utilization" `Quick cpu_utilization_measure;
          Alcotest.test_case "wakeup latency" `Quick cpu_wakeup_latency;
        ] );
      ("properties", qsuite);
    ]
