type table_spec = {
  t_name : string;
  entries : int;
  key_bytes : int;
  value_bytes : int;
  ternary : bool;
}

type register_spec = { r_name : string; r_cells : int; width_bytes : int }

type program = {
  ingress_parser_depth : int;
  egress_parser_depth : int;
  ingress_stages : int;
  egress_stages : int;
  tables : table_spec list;
  registers : register_spec list;
  phv_bits_used : int;
  vliw_used : int;
}

type totals = {
  stages : int;
  phv_bits : int;
  exact_xbar_bytes : int;
  ternary_xbar_bytes : int;
  hash_bits : int;
  hash_dist_units : int;
  vliw_slots : int;
  logical_table_ids : int;
  sram_blocks : int;
  tcam_blocks : int;
  max_parser_depth : int;
}

let tofino2 =
  {
    stages = 20;
    phv_bits = 5_120;
    exact_xbar_bytes = 128;
    ternary_xbar_bytes = 66;
    hash_bits = 5_200;
    hash_dist_units = 6;
    vliw_slots = 32;
    logical_table_ids = 16;
    sram_blocks = 80;
    tcam_blocks = 24;
    max_parser_depth = 32;
  }

let sram_block_bytes = 16 * 1024
let tcam_block_entries = 512

let ceil_div a b = (a + b - 1) / b

let table_sram_blocks t =
  (* exact tables: key+value per entry, plus one overhead block per way *)
  ceil_div (t.entries * (t.key_bytes + t.value_bytes)) sram_block_bytes + 1

let register_sram_blocks r = ceil_div (r.r_cells * r.width_bytes) sram_block_bytes + 1

let sram_blocks_used ?(totals = tofino2) program =
  ignore totals;
  List.fold_left (fun acc t -> acc + (if t.ternary then 0 else table_sram_blocks t)) 0 program.tables
  + List.fold_left (fun acc r -> acc + register_sram_blocks r) 0 program.registers

let tcam_blocks_used program =
  List.fold_left
    (fun acc t -> if t.ternary then acc + ceil_div t.entries tcam_block_entries else acc)
    0 program.tables

let stages_ok ?(totals = tofino2) program =
  program.ingress_stages <= totals.stages && program.egress_stages <= totals.stages

type row = { resource : string; scaling : string; usage : string }

let pct used total = 100.0 *. float_of_int used /. float_of_int total

let report ?(totals = tofino2) program =
  let n_tables = List.length program.tables in
  let n_registers = List.length program.registers in
  let exact_tables = List.filter (fun t -> not t.ternary) program.tables in
  let ternary_tables = List.filter (fun t -> t.ternary) program.tables in
  let exact_xbar_used = List.fold_left (fun a t -> a + t.key_bytes) 0 exact_tables in
  let ternary_xbar_used = List.fold_left (fun a t -> a + t.key_bytes) 0 ternary_tables in
  let hash_bits_used =
    (* each exact table consumes key bits for hashing, floored at 10 (the
       RAM-row select width), and each register consumes an index hash *)
    List.fold_left (fun a t -> a + max 10 (t.key_bytes * 8 / 2)) 0 exact_tables
    + (10 * n_registers)
  in
  let hash_dist_used = n_registers + (List.length exact_tables / 4) in
  let logical_ids_used = n_tables + n_registers in
  (* The paper reports the average utilization across all stages of the
     chip, so budgets are charged against the whole pipeline. *)
  let per_stage used total = pct used (total * totals.stages) in
  [
    {
      resource = "Parsing depth";
      scaling = "Fixed";
      usage =
        Printf.sprintf "Ing. %d, Eg. %d" program.ingress_parser_depth
          program.egress_parser_depth;
    };
    {
      resource = "No. of stages";
      scaling = "Fixed";
      usage = Printf.sprintf "Ing. %d, Eg. %d" program.ingress_stages program.egress_stages;
    };
    {
      resource = "PHV containers";
      scaling = "Fixed";
      usage = Printf.sprintf "%.2f%%" (pct program.phv_bits_used totals.phv_bits);
    };
    {
      resource = "Exact xbars";
      scaling = "Fixed";
      usage = Printf.sprintf "%.2f%%" (per_stage exact_xbar_used totals.exact_xbar_bytes);
    };
    {
      resource = "Ternary xbars";
      scaling = "Fixed";
      usage = Printf.sprintf "%.2f%%" (per_stage ternary_xbar_used totals.ternary_xbar_bytes);
    };
    {
      resource = "Hash bits";
      scaling = "Fixed";
      usage = Printf.sprintf "%.2f%%" (per_stage hash_bits_used totals.hash_bits);
    };
    {
      resource = "Hash dist. units";
      scaling = "Fixed";
      usage = Printf.sprintf "%.2f%%" (per_stage hash_dist_used totals.hash_dist_units);
    };
    {
      resource = "VLIW instr.";
      scaling = "Fixed";
      usage = Printf.sprintf "%.2f%%" (per_stage program.vliw_used totals.vliw_slots);
    };
    {
      resource = "Logical table ID";
      scaling = "Fixed";
      usage = Printf.sprintf "%.2f%%" (per_stage logical_ids_used totals.logical_table_ids);
    };
    {
      resource = "SRAM";
      scaling = "Fixed";
      usage =
        Printf.sprintf "%.2f%%"
          (per_stage (sram_blocks_used ~totals program) totals.sram_blocks);
    };
    {
      resource = "TCAM";
      scaling = "Fixed";
      usage = Printf.sprintf "%.2f%%" (per_stage (tcam_blocks_used program) totals.tcam_blocks);
    };
  ]
