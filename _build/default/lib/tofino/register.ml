type t = { name : string; data : int array }

let create ~name ~cells =
  if cells <= 0 then invalid_arg "Register.create: cells";
  { name; data = Array.make cells 0 }

let name t = t.name
let cells t = Array.length t.data

let read t i =
  if i < 0 || i >= Array.length t.data then
    invalid_arg (Printf.sprintf "Register %s: index %d out of range" t.name i);
  t.data.(i)

let write t i v =
  if i < 0 || i >= Array.length t.data then
    invalid_arg (Printf.sprintf "Register %s: index %d out of range" t.name i);
  t.data.(i) <- v land 0xFFFFFFFF

let clear_index t i = write t i 0
