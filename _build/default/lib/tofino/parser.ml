type kind =
  | Rtp of { av1_template : int option; elements : int }
  | Rtcp of { packet_type : int }
  | Stun
  | Other

type walk = { kind : kind; depth : int }

let max_extension_elements = 10

(* eth + ipv4 + udp (3), rtp header (1), extension header (1), two states
   per element slot (landing + extract), av1 template extraction (1),
   accept (1). *)
let graph_depth = 3 + 1 + 1 + (2 * max_extension_elements) + 1 + 1

exception Reject of int  (** depth at rejection *)

let walk ?(av1_extension_id = 1) buf =
  let len = Bytes.length buf in
  let byte i = if i >= len then raise (Reject 0) else Char.code (Bytes.get buf i) in
  (* the simulator hands us the UDP payload; the wire headers in front of
     it are three fixed parser states *)
  let depth = ref 3 in
  let state () = incr depth in
  try
    if len < 2 then raise (Reject !depth);
    let b0 = byte 0 in
    if b0 lsr 6 = 2 then begin
      state ();
      (* RTP/RTCP demux on the second byte (RFC 5761) *)
      let b1 = byte 1 in
      if b1 >= 192 && b1 <= 223 then { kind = Rtcp { packet_type = b1 }; depth = !depth }
      else begin
        (* fixed RTP header, then CSRCs *)
        if len < 12 then raise (Reject !depth);
        let cc = b0 land 0xF in
        let has_ext = b0 land 0x10 <> 0 in
        let pos = ref (12 + (4 * cc)) in
        if not has_ext then { kind = Rtp { av1_template = None; elements = 0 }; depth = !depth }
        else begin
          state ();
          (* extension block header: profile + length; the ParserCounter
             is initialized with the byte count *)
          let profile = (byte !pos lsl 8) lor byte (!pos + 1) in
          let words = (byte (!pos + 2) lsl 8) lor byte (!pos + 3) in
          let counter = ref (words * 4) in
          pos := !pos + 4;
          let one_byte = profile = 0xBEDE in
          let two_byte = profile land 0xFFF0 = 0x1000 in
          if not (one_byte || two_byte) then raise (Reject !depth);
          let av1_template = ref None in
          let elements = ref 0 in
          (* depth-aware element tree: each slot has a landing state that
             looks ahead one byte, then an extraction state *)
          let continue = ref true in
          while !continue && !counter > 0 && !elements < max_extension_elements do
            state ();
            (* landing: lookahead *)
            let head = byte !pos in
            if head = 0 then begin
              (* padding byte *)
              incr pos;
              decr counter
            end
            else begin
              state ();
              (* extract one element *)
              let id, elen, hdr =
                if one_byte then ((head lsr 4) land 0xF, (head land 0xF) + 1, 1)
                else (head, byte (!pos + 1), 2)
              in
              if one_byte && id = 15 then continue := false
              else begin
                if id = av1_extension_id && elen >= 1 then
                  (* one more state pulls the template id out of the AV1
                     dependency descriptor *)
                  av1_template := Some (byte (!pos + hdr) land 0x3F);
                pos := !pos + hdr + elen;
                counter := !counter - hdr - elen;
                incr elements
              end
            end
          done;
          if !av1_template <> None then state ();
          { kind = Rtp { av1_template = !av1_template; elements = !elements }; depth = !depth }
        end
      end
    end
    else if len >= 8 && b0 lsr 6 = 0 && byte 4 = 0x21 && byte 5 = 0x12 && byte 6 = 0xA4
            && byte 7 = 0x42 then begin
      state ();
      { kind = Stun; depth = !depth }
    end
    else { kind = Other; depth = !depth }
  with Reject d -> { kind = Other; depth = max d 3 }

type t = { mutable packets : int; mutable max_depth : int; mutable total_depth : int }

let create () = { packets = 0; max_depth = 0; total_depth = 0 }

let observe t buf =
  let w = walk buf in
  t.packets <- t.packets + 1;
  t.max_depth <- max t.max_depth w.depth;
  t.total_depth <- t.total_depth + w.depth;
  w

let packets t = t.packets
let max_depth t = t.max_depth

let mean_depth t =
  if t.packets = 0 then 0.0 else float_of_int t.total_depth /. float_of_int t.packets
