(** Static resource-utilization model for a P4 program on Tofino2 —
    regenerates the paper's Table 3.

    The model charges each match-action table and register array against
    per-stage budgets (crossbar bytes, hash bits, SRAM/TCAM blocks, VLIW
    slots, logical table ids) and reports utilization as a percentage of
    the chip totals, the same categories the paper reports. Absolute
    percentages depend on a documented cost model, not on proprietary
    compiler output; EXPERIMENTS.md records ours against the paper's. *)

type table_spec = {
  t_name : string;
  entries : int;
  key_bytes : int;
  value_bytes : int;
  ternary : bool;
}

type register_spec = { r_name : string; r_cells : int; width_bytes : int }

type program = {
  ingress_parser_depth : int;
  egress_parser_depth : int;
  ingress_stages : int;
  egress_stages : int;
  tables : table_spec list;
  registers : register_spec list;
  phv_bits_used : int;
  vliw_used : int;
}

type totals = {
  stages : int;
  phv_bits : int;
  exact_xbar_bytes : int;  (** per stage *)
  ternary_xbar_bytes : int;  (** per stage *)
  hash_bits : int;  (** per stage *)
  hash_dist_units : int;  (** per stage *)
  vliw_slots : int;  (** per stage *)
  logical_table_ids : int;  (** per stage *)
  sram_blocks : int;  (** per stage, 16 KiB each *)
  tcam_blocks : int;  (** per stage, 512x44b each *)
  max_parser_depth : int;
}

val tofino2 : totals

type row = { resource : string; scaling : string; usage : string }
(** One Table 3 line: resource name, scaling behaviour with participants,
    and utilization rendered as the paper does. *)

val report : ?totals:totals -> program -> row list
(** All Table 3 rows except the throughput line (which is measured by the
    experiment, not the static model). *)

val sram_blocks_used : ?totals:totals -> program -> int
val stages_ok : ?totals:totals -> program -> bool
