(** Register arrays — the stateful memory the data plane uses for sequence
    rewriting (the six Stream Tracker tables of paper §6.3). Each array
    is a fixed number of 32-bit cells indexed by the control plane's
    collision-free stream index. *)

type t

val create : name:string -> cells:int -> t
val name : t -> string
val cells : t -> int
val read : t -> int -> int
val write : t -> int -> int -> unit
(** Values are masked to 32 bits. *)

val clear_index : t -> int -> unit
(** Reset one cell to zero (stream teardown). *)
