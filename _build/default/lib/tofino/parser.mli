(** Model of the Tofino packet parser for Scallop's programs (paper
    Appendix E).

    The P4 parser is a static graph of states; parsing into RTP header
    extensions is hard because elements have variable length and position.
    The paper's solution — reproduced here — is a depth-aware tree: a
    landing state per extension-element slot decides via {e lookahead}
    whether a one-byte header, a two-byte header or padding follows, and a
    {e ParserCounter} tracks the extension bytes still to consume.

    [walk] executes that graph over a UDP payload, returning the packet's
    classification and the number of parser states traversed; an
    {!observe}d tracker reports the depth distribution, and {!graph_depth}
    is the static worst case the program must fit (the "Parsing depth"
    row of Table 3). *)

type kind =
  | Rtp of { av1_template : int option; elements : int }
  | Rtcp of { packet_type : int }
  | Stun
  | Other

type walk = { kind : kind; depth : int }

val max_extension_elements : int
(** Slots in the depth-aware tree (10). Elements beyond this are left
    unparsed, exactly as the hardware graph would. *)

val graph_depth : int
(** Static maximum depth of the ingress parse graph: Ethernet/IPv4/UDP,
    RTP + extension header, two states per element slot, and the AV1
    descriptor extraction — 27, the paper's Table 3 value. *)

val walk : ?av1_extension_id:int -> bytes -> walk
(** Parse one UDP payload. Never raises: malformed input classifies as
    [Other] at whatever depth the graph rejected it. *)

type t

val create : unit -> t
val observe : t -> bytes -> walk
val packets : t -> int
val max_depth : t -> int
val mean_depth : t -> float
