lib/tofino/pre.mli:
