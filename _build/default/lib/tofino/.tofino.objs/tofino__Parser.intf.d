lib/tofino/parser.mli:
