lib/tofino/register.ml: Array Printf
