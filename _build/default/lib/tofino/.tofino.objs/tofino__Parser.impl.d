lib/tofino/parser.ml: Bytes Char
