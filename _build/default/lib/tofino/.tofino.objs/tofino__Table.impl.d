lib/tofino/table.ml: Hashtbl
