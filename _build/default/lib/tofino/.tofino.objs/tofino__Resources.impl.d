lib/tofino/resources.ml: List Printf
