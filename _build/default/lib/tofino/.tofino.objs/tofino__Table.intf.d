lib/tofino/table.mli:
