lib/tofino/pre.ml: Hashtbl List Option Printf
