lib/tofino/register.mli:
