lib/tofino/resources.mli:
