module Rng = Scallop_util.Rng
module Dd = Av1.Dd

type config = {
  ssrc : int;
  payload_type : int;
  target_bitrate_bps : int;
  mtu : int;
  keyframe_interval : int;
}

let default_config ~ssrc =
  { ssrc; payload_type = 96; target_bitrate_bps = 2_500_000; mtu = 1160; keyframe_interval = 300 }

type frame = {
  number : int;
  template_id : int;
  layer : Dd.temporal_layer;
  keyframe : bool;
  size_bytes : int;
  packets : Rtp.Packet.t list;
}

type t = {
  rng : Rng.t;
  cfg : config;
  mutable bitrate : int;
  mutable frame_number : int;
  mutable cycle_pos : int;
  mutable sequence : int;
  mutable keyframe_pending : bool;
  mutable frames_emitted : int;
}

let fps = 30.0

let create rng cfg =
  {
    rng;
    cfg;
    bitrate = cfg.target_bitrate_bps;
    frame_number = 0;
    cycle_pos = 0;
    sequence = Rng.int rng 0x10000;
    keyframe_pending = true;
    frames_emitted = 0;
  }

(* Per-layer size weights, normalized so a full L1T3 cycle (T0 T2 T1 T2)
   averages to bitrate/fps per frame. Key frames are ~8x an average frame. *)
let layer_weight = function Dd.T0 -> 1.5 | Dd.T1 -> 1.0 | Dd.T2 -> 0.75
let keyframe_weight = 6.0

let frame_size t ~layer ~keyframe =
  let mean_frame = float_of_int t.bitrate /. 8.0 /. fps in
  let weight = if keyframe then keyframe_weight else layer_weight layer in
  let noisy = Rng.lognormal t.rng ~mu:(log (mean_frame *. weight)) ~sigma:0.15 in
  max 64 (int_of_float noisy)

let packetize t ~time_ns ~frame_number ~template_id ~keyframe ~size =
  let structure = if keyframe then Some Dd.l1t3_structure else None in
  let ts = time_ns / 11111 land 0xFFFFFFFF in
  (* 90 kHz clock: 1e9 / 90e3 ≈ 11111 ns per tick *)
  let n_packets = max 1 ((size + t.cfg.mtu - 1) / t.cfg.mtu) in
  List.init n_packets (fun i ->
      let first = i = 0 and last = i = n_packets - 1 in
      let chunk =
        if last then size - (t.cfg.mtu * (n_packets - 1)) else t.cfg.mtu
      in
      let dd : Dd.t =
        {
          start_of_frame = first;
          end_of_frame = last;
          template_id;
          frame_number;
          structure = (if first then structure else None);
        }
      in
      let seq = t.sequence in
      t.sequence <- Rtp.Packet.seq_succ t.sequence;
      Rtp.Packet.make ~marker:last
        ~extensions:[ { Rtp.Packet.id = Dd.extension_id; data = Dd.serialize dd } ]
        ~payload_type:t.cfg.payload_type ~sequence:seq ~timestamp:ts ~ssrc:t.cfg.ssrc
        (Bytes.create chunk))

let next_frame t ~time_ns =
  let periodic_key =
    t.cfg.keyframe_interval > 0
    && t.frames_emitted mod t.cfg.keyframe_interval = 0
    && t.cycle_pos = 0
  in
  let keyframe = (t.keyframe_pending || periodic_key) && t.cycle_pos = 0 in
  (* A demanded key frame waits for the next cycle start so the layer
     structure stays aligned. *)
  let template_id = Dd.l1t3_template ~keyframe ~frame_in_cycle:t.cycle_pos in
  let layer = Dd.layer_of_template_l1t3 template_id in
  let size = frame_size t ~layer ~keyframe in
  let frame_number = t.frame_number in
  let packets = packetize t ~time_ns ~frame_number ~template_id ~keyframe ~size in
  if keyframe then t.keyframe_pending <- false;
  t.frame_number <- Dd.frame_number_succ t.frame_number;
  t.cycle_pos <- (t.cycle_pos + 1) land 3;
  t.frames_emitted <- t.frames_emitted + 1;
  { number = frame_number; template_id; layer; keyframe; size_bytes = size; packets }

let set_bitrate t b = t.bitrate <- max 50_000 b
let bitrate t = t.bitrate
let request_keyframe t = t.keyframe_pending <- true
let frames_emitted t = t.frames_emitted
