(** Synthetic AV1-SVC video source.

    Emits the L1T3 frame pattern of the paper's Fig. 9 at 30 fps: a
    4-frame cycle of layers T0, T2, T1, T2. Frame sizes follow the target
    bitrate with per-layer weights and lognormal variation; key frames are
    several times larger and carry the template dependency structure in
    their AV1 dependency descriptor. Frames are packetized into RTP so
    that a frame never shares a packet with another frame (layer-aligned
    packetization is what makes SVC dropping possible, paper §3). *)

type config = {
  ssrc : int;
  payload_type : int;
  target_bitrate_bps : int;
  mtu : int;  (** Max RTP payload bytes per packet. *)
  keyframe_interval : int;  (** Frames between periodic key frames; 0 = only on demand. *)
}

val default_config : ssrc:int -> config
(** 720p-ish defaults: pt 96, 2.5 Mb/s, 1160-byte MTU, 10 s key frames. *)

type frame = {
  number : int;
  template_id : int;
  layer : Av1.Dd.temporal_layer;
  keyframe : bool;
  size_bytes : int;
  packets : Rtp.Packet.t list;
}

type t

val create : Scallop_util.Rng.t -> config -> t

val next_frame : t -> time_ns:int -> frame
(** Produce the next frame in the cycle; the caller owns pacing (call it
    every 1/30 s). [time_ns] stamps the RTP timestamp (90 kHz clock). *)

val set_bitrate : t -> int -> unit
(** Sender-side rate adaptation on REMB feedback. *)

val bitrate : t -> int

val request_keyframe : t -> unit
(** Force the next frame to be a key frame (PLI handling). *)

val frames_emitted : t -> int
val fps : float
(** Nominal full frame rate (30). *)
