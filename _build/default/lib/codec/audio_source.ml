module Rng = Scallop_util.Rng

type config = { ssrc : int; payload_type : int; frame_bytes : int }

let default_config ~ssrc = { ssrc; payload_type = 111; frame_bytes = 128 }

type t = {
  rng : Rng.t;
  cfg : config;
  mutable sequence : int;
  mutable packets_emitted : int;
}

let interval_ns = 20_000_000

let create rng cfg =
  { rng; cfg; sequence = Rng.int rng 0x10000; packets_emitted = 0 }

let next_packet t ~time_ns =
  (* 48 kHz clock: 20833 ns per tick. Size varies a little with VBR. *)
  let ts = time_ns / 20833 land 0xFFFFFFFF in
  let size = max 32 (t.cfg.frame_bytes + Rng.int t.rng 33 - 16) in
  let seq = t.sequence in
  t.sequence <- Rtp.Packet.seq_succ t.sequence;
  t.packets_emitted <- t.packets_emitted + 1;
  Rtp.Packet.make ~payload_type:t.cfg.payload_type ~sequence:seq ~timestamp:ts
    ~ssrc:t.cfg.ssrc (Bytes.create size)

let packets_emitted t = t.packets_emitted
