(** Simulcast video source: the same (synthetic) scene encoded as several
    independent L1T3 streams at decreasing bitrates, each with its own
    SSRC, sequence and frame numbering — what a browser produces when
    simulcast is negotiated. *)

type config = {
  base_ssrc : int;  (** rendition i uses [base_ssrc + 2 * i] *)
  payload_type : int;
  bitrates : int array;  (** highest quality first *)
  mtu : int;
  keyframe_interval : int;
}

val default_config : base_ssrc:int -> config
(** Three renditions: 2.5 Mb/s, 900 kb/s, 300 kb/s. *)

type t

val create : Scallop_util.Rng.t -> config -> t

val ssrcs : t -> int array

val next_frames : t -> time_ns:int -> Video_source.frame list
(** One frame per rendition, to be sent every 1/30 s. *)

val request_keyframe : t -> rendition:int -> unit
(** Key-frame request for one rendition (a PLI names its SSRC). *)

val rendition_of_ssrc : t -> int -> int option
