module Dd = Av1.Dd

(* Byte shares follow the layer weights in Video_source: a full 4-frame
   cycle weighs 1.5 + 0.75 + 1.0 + 0.75 = 4.0, of which T0 contributes
   1.5, T1 1.0 and the two T2 frames 1.5. *)
let layer_bitrate_share = function
  | Dd.DT_30fps -> 1.0
  | Dd.DT_15fps -> 2.5 /. 4.0
  | Dd.DT_7_5fps -> 1.5 /. 4.0

(* When a receiver is held at a reduced target, its bandwidth estimate is
   capped near the reduced receive rate (GCC grows at most to ~1.5x the
   incoming rate), so "estimate >= cost of the higher layer" can never be
   observed directly. Upgrades therefore trigger on generous headroom over
   the *current* target's cost, stepping one level at a time. *)
let upgrade_headroom = 1.25
let upgrade_next_margin = 0.88

let next_up = function
  | Dd.DT_7_5fps -> Some Dd.DT_15fps
  | Dd.DT_15fps -> Some Dd.DT_30fps
  | Dd.DT_30fps -> None

let select_decode_target ~current ~estimate_bps ~full_bitrate_bps =
  let cost dt = layer_bitrate_share dt *. float_of_int full_bitrate_bps in
  let est = float_of_int estimate_bps in
  let affordable dt = est >= cost dt in
  let downgrade =
    (* highest target the estimate still affords *)
    if affordable Dd.DT_30fps then Dd.DT_30fps
    else if affordable Dd.DT_15fps then Dd.DT_15fps
    else Dd.DT_7_5fps
  in
  if Dd.index_of_target downgrade < Dd.index_of_target current then downgrade
  else
    match next_up current with
    | None -> current
    | Some candidate ->
        if
          est >= upgrade_headroom *. cost current
          && est >= upgrade_next_margin *. cost candidate
        then candidate
        else current
