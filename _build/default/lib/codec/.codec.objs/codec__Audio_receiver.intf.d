lib/codec/audio_receiver.mli: Rtp
