lib/codec/video_receiver.ml: Array Av1 Bytes Float Hashtbl List Rtp Scallop_util
