lib/codec/audio_source.ml: Bytes Rtp Scallop_util
