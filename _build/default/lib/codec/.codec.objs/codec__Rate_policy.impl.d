lib/codec/rate_policy.ml: Av1
