lib/codec/rate_policy.mli: Av1
