lib/codec/audio_source.mli: Rtp Scallop_util
