lib/codec/video_source.mli: Av1 Rtp Scallop_util
