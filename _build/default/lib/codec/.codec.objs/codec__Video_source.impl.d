lib/codec/video_source.ml: Av1 Bytes List Rtp Scallop_util
