lib/codec/simulcast_source.ml: Array Scallop_util Video_source
