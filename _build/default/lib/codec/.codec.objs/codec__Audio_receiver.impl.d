lib/codec/audio_receiver.ml: Array Float Hashtbl Rtp
