lib/codec/video_receiver.mli: Rtp Scallop_util
