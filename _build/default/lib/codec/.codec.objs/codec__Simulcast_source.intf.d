lib/codec/simulcast_source.mli: Scallop_util Video_source
