(** Opus-like audio source: one ~128-byte packet every 20 ms (50 pps),
    matching the paper's Table 1 audio profile (~200 B on the wire). *)

type config = { ssrc : int; payload_type : int; frame_bytes : int }

val default_config : ssrc:int -> config
(** pt 111, 128-byte frames. *)

type t

val create : Scallop_util.Rng.t -> config -> t

val next_packet : t -> time_ns:int -> Rtp.Packet.t
(** Call every 20 ms; timestamps use the 48 kHz Opus clock. *)

val packets_emitted : t -> int

val interval_ns : int
(** 20 ms. *)
