type config = {
  base_ssrc : int;
  payload_type : int;
  bitrates : int array;
  mtu : int;
  keyframe_interval : int;
}

let default_config ~base_ssrc =
  {
    base_ssrc;
    payload_type = 96;
    bitrates = [| 2_500_000; 900_000; 300_000 |];
    mtu = 1160;
    keyframe_interval = 300;
  }

type t = { sources : Video_source.t array; ssrcs : int array }

let create rng cfg =
  let ssrcs = Array.mapi (fun i _ -> cfg.base_ssrc + (2 * i)) cfg.bitrates in
  let sources =
    Array.mapi
      (fun i bitrate ->
        Video_source.create
          (Scallop_util.Rng.split rng)
          {
            (Video_source.default_config ~ssrc:ssrcs.(i)) with
            payload_type = cfg.payload_type;
            target_bitrate_bps = bitrate;
            mtu = cfg.mtu;
            keyframe_interval = cfg.keyframe_interval;
          })
      cfg.bitrates
  in
  { sources; ssrcs }

let ssrcs t = t.ssrcs

let next_frames t ~time_ns =
  Array.to_list (Array.map (fun src -> Video_source.next_frame src ~time_ns) t.sources)

let request_keyframe t ~rendition =
  if rendition >= 0 && rendition < Array.length t.sources then
    Video_source.request_keyframe t.sources.(rendition)

let rendition_of_ssrc t ssrc =
  let rec find i =
    if i >= Array.length t.ssrcs then None
    else if t.ssrcs.(i) = ssrc then Some i
    else find (i + 1)
  in
  find 0
