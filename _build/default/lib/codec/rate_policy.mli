(** The default quality-selection heuristic shared by the software SFU and
    Scallop's switch agent: fixed capacity-estimate thresholds mapping a
    bandwidth estimate to an L1T3 decode target (paper §5.4 implements
    exactly such a threshold heuristic, while allowing adopters to plug in
    arbitrary algorithms). *)

val select_decode_target :
  current:Av1.Dd.decode_target ->
  estimate_bps:int ->
  full_bitrate_bps:int ->
  Av1.Dd.decode_target
(** Downgrades pick the highest target the estimate affords; upgrades step
    one level at a time once the estimate shows generous headroom over the
    current target's cost (a reduced target caps the observable estimate
    near the reduced receive rate, so headroom-over-current is the only
    recoverable signal). Legacy notes:
    an upgrade requires headroom (estimate above 1.15x the layer's cost)
    while a downgrade happens as soon as the estimate falls below it.
    Dropping to 15 fps roughly saves the T2 share of bytes, 7.5 fps the
    T1+T2 share (layer weights from {!Video_source}). *)

val layer_bitrate_share : Av1.Dd.decode_target -> float
(** Fraction of the full stream bitrate needed for a decode target:
    1.0 for 30 fps, ~0.69 for 15 fps, ~0.47 for 7.5 fps. *)
