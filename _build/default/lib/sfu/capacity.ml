let legs_per_32core = 38_400
let single_core_pps = 240_000

let stream_legs ~participants ~senders ~media_types =
  if participants < 2 || senders < 1 || senders > participants then
    invalid_arg "Sfu.Capacity.stream_legs";
  senders * media_types * participants
(* each sender: media_types uplink legs + media_types*(participants-1)
   downlink legs = media_types * participants legs in total *)

let meetings_supported ?(cores = 32) ~participants ~senders ~media_types () =
  let legs = stream_legs ~participants ~senders ~media_types in
  legs_per_32core * cores / 32 / legs
