module Addr = Scallop_util.Addr
module Rng = Scallop_util.Rng
module Stats = Scallop_util.Stats
module Engine = Netsim.Engine
module Network = Netsim.Network
module Dgram = Netsim.Dgram
module Cpu_queue = Netsim.Cpu_queue
module Packet = Rtp.Packet
module Rtcp = Rtp.Rtcp
module Dd = Av1.Dd

type meeting_id = int
type participant_id = int

let history_size = 1024

type out_stream = {
  receiver : participant_id;
  dst : Addr.t;  (** receiver client's local addr for this leg *)
  sfu_port : int;
  mutable next_video_seq : int;
  mutable next_audio_seq : int;
  mutable target : Dd.decode_target;
  history : Packet.t option array;
  mutable estimate_bps : int;
  mutable packets_out : int;
}

type participant = {
  id : participant_id;
  meeting : meeting_id;
  client : Webrtc.Client.t;
  uplink_port : int;
  mutable client_send_addr : Addr.t option;  (** for upstream feedback *)
  video_ssrc : int;
  audio_ssrc : int;
  full_bitrate : int;
  sends_media : bool;
  outs : (participant_id, out_stream) Hashtbl.t;  (** this sender's legs *)
  mutable last_upstream_remb : int;
}

type t = {
  engine : Engine.t;
  network : Network.t;
  rng : Rng.t;
  ip : int;
  cpu : Cpu_queue.t;
  participants : (participant_id, participant) Hashtbl.t;
  meetings : (meeting_id, participant_id list ref) Hashtbl.t;
  mutable next_port : int;
  mutable next_id : int;
  mutable next_meeting : int;
  mutable packets_processed : int;
  mutable bytes_processed : int;
  forward_delay : Stats.Samples.t;
}

let create engine network rng ~ip ?(cpu = Cpu_queue.default_server) () =
  {
    engine;
    network;
    rng;
    ip;
    cpu = Cpu_queue.create engine (Rng.split rng) cpu;
    participants = Hashtbl.create 64;
    meetings = Hashtbl.create 16;
    next_port = 30_000;
    next_id = 0;
    next_meeting = 0;
    packets_processed = 0;
    bytes_processed = 0;
    forward_delay = Stats.Samples.create ();
  }

let ip t = t.ip

let fresh_port t =
  let p = t.next_port in
  t.next_port <- t.next_port + 1;
  p

let create_meeting t =
  let id = t.next_meeting in
  t.next_meeting <- t.next_meeting + 1;
  Hashtbl.replace t.meetings id (ref []);
  id

let account t buf =
  t.packets_processed <- t.packets_processed + 1;
  t.bytes_processed <- t.bytes_processed + Bytes.length buf + 42

let send_from t ~port ~dst payload =
  Network.send t.network (Dgram.v ~src:(Addr.v t.ip port) ~dst payload)

(* --- media path ----------------------------------------------------------- *)

let template_of pkt =
  match Packet.find_extension pkt Dd.extension_id with
  | None -> None
  | Some data -> ( try Some (Dd.parse data).Dd.template_id with Rtp.Wire.Parse_error _ -> None)

(* Re-originate one media packet on an output leg. The split proxy owns
   the leg's sequence space, so drops never leave gaps. *)
let emit_media t ingress_ns out (pkt : Packet.t) ~is_video =
  let seq =
    if is_video then begin
      let s = out.next_video_seq in
      out.next_video_seq <- Packet.seq_succ s;
      s
    end
    else begin
      let s = out.next_audio_seq in
      out.next_audio_seq <- Packet.seq_succ s;
      s
    end
  in
  let pkt' = Packet.with_sequence pkt seq in
  if is_video then out.history.(seq mod history_size) <- Some pkt';
  let buf = Packet.serialize pkt' in
  Cpu_queue.submit t.cpu ~size:(Bytes.length buf) (fun () ->
      account t buf;
      out.packets_out <- out.packets_out + 1;
      Stats.Samples.observe t.forward_delay (float_of_int (Engine.now t.engine - ingress_ns));
      send_from t ~port:out.sfu_port ~dst:out.dst buf)

let forward_media t sender buf =
  let ingress_ns = Engine.now t.engine in
  Cpu_queue.submit t.cpu ~size:(Bytes.length buf) (fun () ->
      account t buf;
      match Packet.parse buf with
      | exception Rtp.Wire.Parse_error _ -> ()
      | pkt ->
          let is_video = pkt.Packet.ssrc = sender.video_ssrc in
          let template = if is_video then template_of pkt else None in
          Hashtbl.iter
            (fun _ out ->
              let keep =
                match template with
                | Some id -> Dd.template_in_target_l1t3 id out.target
                | None -> true
              in
              if keep then emit_media t ingress_ns out pkt ~is_video)
            sender.outs)

(* Forward a sender's RTCP (SRs, SDES) to every receiver leg. *)
let forward_sender_rtcp t sender buf =
  Cpu_queue.submit t.cpu ~size:(Bytes.length buf) (fun () ->
      account t buf;
      Hashtbl.iter
        (fun _ out ->
          Cpu_queue.submit t.cpu ~size:(Bytes.length buf) (fun () ->
              account t buf;
              send_from t ~port:out.sfu_port ~dst:out.dst buf))
        sender.outs)

let answer_stun t ~port ~src buf =
  Cpu_queue.submit t.cpu ~size:(Bytes.length buf) (fun () ->
      account t buf;
      match Rtp.Stun.parse buf with
      | exception Rtp.Wire.Parse_error _ -> ()
      | msg when msg.Rtp.Stun.cls = Rtp.Stun.Request ->
          let reply =
            Rtp.Stun.binding_success ~transaction_id:msg.Rtp.Stun.transaction_id
              ~mapped_ip:src.Addr.ip ~mapped_port:src.Addr.port
          in
          send_from t ~port ~dst:src (Rtp.Stun.serialize reply)
      | _ -> ())

(* --- uplink handler (media + sender RTCP from one participant) ------------ *)

let uplink_handler t sender (dgram : Dgram.t) =
  if sender.client_send_addr = None then sender.client_send_addr <- Some dgram.src;
  match Rtp.Demux.classify dgram.payload with
  | Rtp.Demux.Rtp_media -> forward_media t sender dgram.payload
  | Rtp.Demux.Rtcp_feedback -> forward_sender_rtcp t sender dgram.payload
  | Rtp.Demux.Stun_packet -> answer_stun t ~port:sender.uplink_port ~src:dgram.src dgram.payload
  | Rtp.Demux.Unknown -> ()

(* --- downstream feedback handler (per out-stream leg) ---------------------- *)

let upstream_remb_interval_ns = 1_000_000_000

let maybe_send_upstream_remb t sender =
  let now = Engine.now t.engine in
  if now - sender.last_upstream_remb >= upstream_remb_interval_ns then begin
    sender.last_upstream_remb <- now;
    match sender.client_send_addr with
    | None -> ()
    | Some dst ->
        (* The sender should encode at the rate of its best downstream leg;
           slower legs are served by dropping layers (paper §5.3 rationale,
           which Scallop implements in hardware and the split proxy in
           software). *)
        let best = Hashtbl.fold (fun _ o acc -> max acc o.estimate_bps) sender.outs 0 in
        if best > 0 then begin
          let remb =
            Rtcp.Remb { sender_ssrc = 0; bitrate_bps = best; ssrcs = [ sender.video_ssrc ] }
          in
          let buf = Rtcp.serialize_compound [ remb ] in
          Cpu_queue.submit t.cpu ~size:(Bytes.length buf) (fun () ->
              account t buf;
              send_from t ~port:sender.uplink_port ~dst buf)
        end
  end

let retransmit t out seqs =
  List.iter
    (fun seq ->
      match out.history.(seq mod history_size) with
      | Some pkt when pkt.Packet.sequence = seq ->
          let buf = Packet.serialize pkt in
          Cpu_queue.submit t.cpu ~size:(Bytes.length buf) (fun () ->
              account t buf;
              send_from t ~port:out.sfu_port ~dst:out.dst buf)
      | Some _ | None -> ())
    seqs

let forward_pli_upstream t sender =
  match sender.client_send_addr with
  | None -> ()
  | Some dst ->
      let buf =
        Rtcp.serialize_compound [ Rtcp.Pli { sender_ssrc = 0; media_ssrc = sender.video_ssrc } ]
      in
      Cpu_queue.submit t.cpu ~size:(Bytes.length buf) (fun () ->
          account t buf;
          send_from t ~port:sender.uplink_port ~dst buf)

let feedback_handler t sender out (dgram : Dgram.t) =
  match Rtp.Demux.classify dgram.payload with
  | Rtp.Demux.Rtcp_feedback ->
      Cpu_queue.submit t.cpu ~size:(Bytes.length dgram.payload) (fun () ->
          account t dgram.payload;
          match Rtcp.parse_compound dgram.payload with
          | exception Rtp.Wire.Parse_error _ -> ()
          | packets ->
              List.iter
                (fun p ->
                  match p with
                  | Rtcp.Remb { bitrate_bps; _ } ->
                      out.estimate_bps <- bitrate_bps;
                      out.target <-
                        Codec.Rate_policy.select_decode_target ~current:out.target
                          ~estimate_bps:bitrate_bps ~full_bitrate_bps:sender.full_bitrate;
                      maybe_send_upstream_remb t sender
                  | Rtcp.Nack { lost; _ } -> retransmit t out lost
                  | Rtcp.Pli _ -> forward_pli_upstream t sender
                  | Rtcp.Twcc _ | Rtcp.Sender_report _ | Rtcp.Receiver_report _
                  | Rtcp.Sdes _ | Rtcp.Bye _ -> ())
                packets)
  | Rtp.Demux.Stun_packet -> answer_stun t ~port:out.sfu_port ~src:dgram.src dgram.payload
  | Rtp.Demux.Rtp_media | Rtp.Demux.Unknown -> ()

(* --- signaling ------------------------------------------------------------- *)

(* Create the (sender -> receiver) leg: a fresh SFU port the receiver will
   see as its peer, and a receive connection on the receiver's client. *)
let create_leg t ~(sender : participant) ~(receiver : participant) =
  let sfu_port = fresh_port t in
  let recv_local_port = Webrtc.Client.fresh_port receiver.client in
  let conn =
    Webrtc.Client.add_recv_connection receiver.client ~local_port:recv_local_port
      ~remote:(Addr.v t.ip sfu_port) ~video_ssrc:sender.video_ssrc
      ~audio_ssrc:sender.audio_ssrc
  in
  let out =
    {
      receiver = receiver.id;
      dst = Webrtc.Client.local_addr conn;
      sfu_port;
      next_video_seq = Rng.int t.rng 0x10000;
      next_audio_seq = Rng.int t.rng 0x10000;
      target = Dd.DT_30fps;
      history = Array.make history_size None;
      estimate_bps = 0;
      packets_out = 0;
    }
  in
  Hashtbl.replace sender.outs receiver.id out;
  Network.bind t.network (Addr.v t.ip sfu_port) (feedback_handler t sender out)

let join t ~meeting ~client ~send_media =
  let members =
    match Hashtbl.find_opt t.meetings meeting with
    | Some m -> m
    | None -> invalid_arg "Sfu.Server.join: unknown meeting"
  in
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let uplink_port = fresh_port t in
  let p =
    {
      id;
      meeting;
      client;
      uplink_port;
      client_send_addr = None;
      video_ssrc = 0x10000 + (id * 2);
      audio_ssrc = 0x10001 + (id * 2);
      full_bitrate = 2_500_000;
      sends_media = send_media;
      outs = Hashtbl.create 8;
      last_upstream_remb = 0;
    }
  in
  Hashtbl.replace t.participants id p;
  Network.bind t.network (Addr.v t.ip uplink_port) (uplink_handler t p);
  if send_media then begin
    let send_port = Webrtc.Client.fresh_port client in
    let conn =
      Webrtc.Client.add_send_connection client ~local_port:send_port
        ~remote:(Addr.v t.ip uplink_port) ~video_ssrc:p.video_ssrc ~audio_ssrc:p.audio_ssrc
    in
    p.client_send_addr <- Some (Webrtc.Client.local_addr conn)
  end;
  (* wire legs with every existing member, both directions *)
  List.iter
    (fun other_id ->
      let other = Hashtbl.find t.participants other_id in
      if other.sends_media then create_leg t ~sender:other ~receiver:p;
      if send_media then create_leg t ~sender:p ~receiver:other)
    !members;
  members := id :: !members;
  id

let leave t id =
  match Hashtbl.find_opt t.participants id with
  | None -> ()
  | Some p ->
      let members = Hashtbl.find t.meetings p.meeting in
      members := List.filter (fun x -> x <> id) !members;
      Network.unbind t.network (Addr.v t.ip p.uplink_port);
      Hashtbl.iter
        (fun _ out -> Network.unbind t.network (Addr.v t.ip out.sfu_port))
        p.outs;
      Hashtbl.reset p.outs;
      (* remove legs other senders had towards this participant *)
      List.iter
        (fun other_id ->
          let other = Hashtbl.find t.participants other_id in
          match Hashtbl.find_opt other.outs id with
          | Some out ->
              Network.unbind t.network (Addr.v t.ip out.sfu_port);
              Hashtbl.remove other.outs id
          | None -> ())
        !members;
      Hashtbl.remove t.participants id

(* --- stats ------------------------------------------------------------------ *)

let packets_processed t = t.packets_processed
let bytes_processed t = t.bytes_processed
let cpu_utilization t = Cpu_queue.utilization t.cpu
let cpu_busy_ns t = Cpu_queue.busy_ns t.cpu
let cpu_dropped t = Cpu_queue.dropped t.cpu
let forward_delay_samples t = t.forward_delay

let out_stream_count t =
  Hashtbl.fold
    (fun _ p acc ->
      acc
      + (2 * Hashtbl.length p.outs)
      + if p.sends_media then 2 else 0)
    t.participants 0
