(** Closed-form capacity model of a software SFU server (DESIGN.md §4).

    Calibration: the paper reports that a 32-core commodity server supports
    192 ten-party all-senders meetings and 4.8K two-party meetings. Both
    anchor to one constant — 38,400 concurrently terminated stream legs —
    because a split proxy terminates every uplink and downlink leg of every
    media type. *)

val legs_per_32core : int
(** 38,400. *)

val stream_legs : participants:int -> senders:int -> media_types:int -> int
(** Terminated legs for one meeting: each sender has [media_types] uplink
    legs plus [media_types * (participants - 1)] downlink legs. *)

val meetings_supported :
  ?cores:int -> participants:int -> senders:int -> media_types:int -> unit -> int
(** Concurrent meetings a [cores]-core server (default 32) sustains. *)

val single_core_pps : int
(** Forwarded packets/second one pinned core sustains (~240K; §2.2
    saturation at ~80 participants). *)
