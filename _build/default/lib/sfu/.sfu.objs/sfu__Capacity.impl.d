lib/sfu/capacity.ml:
