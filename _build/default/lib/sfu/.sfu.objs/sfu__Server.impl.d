lib/sfu/server.ml: Array Av1 Bytes Codec Hashtbl List Netsim Rtp Scallop_util Webrtc
