lib/sfu/server.mli: Netsim Scallop_util Webrtc
