lib/sfu/capacity.mli:
