(** Software split-proxy SFU — the MediaSoup-like baseline (paper §2, §3,
    Fig. 5 left).

    The server terminates a WebRTC connection per participant and
    re-originates each media stream per receiver, with its own sequence
    space, retransmission buffer and rate-adaptation state. Every packet —
    in and out — passes through a {!Netsim.Cpu_queue} work item, so CPU
    saturation produces exactly the queueing delay, jitter and drops the
    paper measures in Figs. 3, 4 and 19.

    Rate adaptation drops SVC enhancement layers per receiver based on the
    receiver's REMB estimates, using the shared
    {!Codec.Rate_policy.select_decode_target} heuristic. Because streams
    are re-originated, sequence numbers stay continuous after drops — the
    split proxy never faces the rewriting problem Scallop's true proxy
    must solve. *)

type t

val create :
  Netsim.Engine.t ->
  Netsim.Network.t ->
  Scallop_util.Rng.t ->
  ip:int ->
  ?cpu:Netsim.Cpu_queue.config ->
  unit ->
  t
(** [cpu] defaults to {!Netsim.Cpu_queue.default_server} (a single pinned
    core, as in the paper's §2.2 experiment). *)

val ip : t -> int

type meeting_id = int
type participant_id = int

val create_meeting : t -> meeting_id

val join :
  t -> meeting:meeting_id -> client:Webrtc.Client.t -> send_media:bool ->
  participant_id
(** Performs the signaling a split proxy would: creates the client's send
    connection towards the SFU (if [send_media]) and a receive connection
    for every current sender's stream, plus the symmetric streams towards
    existing participants. *)

val leave : t -> participant_id -> unit

(** {1 Statistics} *)

val packets_processed : t -> int
(** Total packet handling events in software (every packet leg). *)

val bytes_processed : t -> int
val cpu_utilization : t -> float
val cpu_busy_ns : t -> int
val cpu_dropped : t -> int

val forward_delay_samples : t -> Scallop_util.Stats.Samples.t
(** Per-media-packet SFU residence time (ingress arrival to egress send),
    nanoseconds — the Fig. 19 quantity. *)

val out_stream_count : t -> int
(** Concurrent re-originated stream legs (the capacity unit of the
    32-core calibration in DESIGN.md §4). *)
