(** Star topology network: every host has an uplink and a downlink to a
    well-provisioned core, which is how VCA clients relate to an SFU. A
    datagram traverses the source host's uplink, then the destination
    host's downlink, then is handed to the handler bound to the
    destination address. *)

type t

val create : Engine.t -> Scallop_util.Rng.t -> t

val add_host :
  t -> ip:int -> ?uplink:Link.config -> ?downlink:Link.config -> unit -> unit
(** Hosts default to {!Link.default} in both directions. Re-adding an ip
    replaces its links. *)

val bind : t -> Scallop_util.Addr.t -> (Dgram.t -> unit) -> unit
(** Bind a handler to a UDP address. Rebinding replaces the handler. *)

val unbind : t -> Scallop_util.Addr.t -> unit

val bind_host : t -> ip:int -> (Dgram.t -> unit) -> unit
(** Wildcard bind: receives datagrams to any port of [ip] that has no
    exact {!bind}. This is how the Scallop switch ingests all traffic. *)

val unbind_host : t -> ip:int -> unit

val send : t -> Dgram.t -> unit
(** Inject a datagram at the current engine time from [dgram.src]'s host.
    Unknown source/destination hosts or unbound destination addresses
    count as drops. *)

val uplink : t -> ip:int -> Link.t
(** @raise Not_found for unknown hosts. *)

val downlink : t -> ip:int -> Link.t
val engine : t -> Engine.t
val undeliverable : t -> int
