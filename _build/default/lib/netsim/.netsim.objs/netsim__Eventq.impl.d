lib/netsim/eventq.ml: Array
