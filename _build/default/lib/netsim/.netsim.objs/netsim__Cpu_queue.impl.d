lib/netsim/cpu_queue.ml: Array Engine Scallop_util
