lib/netsim/network.ml: Dgram Engine Hashtbl Link Scallop_util
