lib/netsim/dgram.ml: Bytes Format Scallop_util
