lib/netsim/dgram.mli: Format Scallop_util
