lib/netsim/cpu_queue.mli: Engine Scallop_util
