lib/netsim/engine.ml: Eventq Option
