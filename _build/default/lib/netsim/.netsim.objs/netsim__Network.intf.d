lib/netsim/network.mli: Dgram Engine Link Scallop_util
