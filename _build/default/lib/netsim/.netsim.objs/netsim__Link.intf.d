lib/netsim/link.mli: Dgram Engine Scallop_util
