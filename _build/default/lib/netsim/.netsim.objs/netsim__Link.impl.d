lib/netsim/link.ml: Dgram Engine Float Scallop_util
