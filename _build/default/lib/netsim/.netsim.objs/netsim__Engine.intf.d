lib/netsim/engine.mli:
