lib/netsim/eventq.mli:
