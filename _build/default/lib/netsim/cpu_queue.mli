(** A CPU modelled as a c-server queue with per-packet service times and
    occasional scheduler-induced spikes.

    This is the substrate behind the software-SFU baseline: packet
    processing costs a base time plus a per-byte copy cost, occasionally
    inflated by a heavy-tailed "context switch / interrupt" penalty (paper
    §2.2). Under load, queueing delay — the source of the jitter in
    Figs. 3 and 19 — emerges naturally. *)

type config = {
  cores : int;
  service_ns_per_packet : int;  (** Fixed per-packet cost (syscalls, lookup). *)
  service_ns_per_byte : int;  (** Socket-buffer copy cost. *)
  spike_probability : float;  (** Probability of a scheduler spike per packet. *)
  spike_mu : float;  (** Lognormal mu of the spike, in ns (median = exp mu). *)
  spike_sigma : float;
  max_queue_delay_ns : int;  (** Packets that would wait longer are dropped. *)
  wakeup_latency_ns : int;
      (** Fixed scheduler/socket wakeup latency added to each completion
          without occupying the core — it inflates per-packet latency but
          not CPU utilization. *)
}

val default_server : config
(** One core of a commodity server: ~4 µs per packet + 0.4 ns/B, 1% spikes
    with ~50 µs median, 500 ms queue cap. *)

type t

val create : Engine.t -> Scallop_util.Rng.t -> config -> t

val submit : t -> size:int -> (unit -> unit) -> unit
(** [submit t ~size k] queues a work item of [size] bytes; [k] runs when
    service completes (or never, if the item is dropped on overload). *)

val processed : t -> int
val dropped : t -> int

val utilization : t -> float
(** Aggregate busy fraction since creation at the current engine time. *)

val busy_ns : t -> int
(** Total busy time accumulated; callers can difference it for windowed
    utilization. *)

val backlog_ns : t -> int
(** Time until the least-loaded core frees up — the queueing delay a new
    arrival would see. *)
