module Rng = Scallop_util.Rng

type config = {
  cores : int;
  service_ns_per_packet : int;
  service_ns_per_byte : int;
  spike_probability : float;
  spike_mu : float;
  spike_sigma : float;
  max_queue_delay_ns : int;
  wakeup_latency_ns : int;
}

let default_server =
  {
    cores = 1;
    service_ns_per_packet = 4_000;
    service_ns_per_byte = 0;
    spike_probability = 0.01;
    spike_mu = log 50_000.0;
    spike_sigma = 0.8;
    max_queue_delay_ns = 500_000_000;
    wakeup_latency_ns = 20_000;
  }

type t = {
  engine : Engine.t;
  rng : Rng.t;
  cfg : config;
  free_at : int array;  (** Per-core time at which the core becomes idle. *)
  mutable busy_ns : int;
  mutable processed : int;
  mutable dropped : int;
}

let create engine rng cfg =
  if cfg.cores <= 0 then invalid_arg "Cpu_queue.create: cores";
  {
    engine;
    rng;
    cfg;
    free_at = Array.make cfg.cores 0;
    busy_ns = 0;
    processed = 0;
    dropped = 0;
  }

let least_loaded t =
  let best = ref 0 in
  for i = 1 to Array.length t.free_at - 1 do
    if t.free_at.(i) < t.free_at.(!best) then best := i
  done;
  !best

let service_time t ~size =
  let base = t.cfg.service_ns_per_packet + (size * t.cfg.service_ns_per_byte) in
  if Rng.bernoulli t.rng t.cfg.spike_probability then
    base + int_of_float (Rng.lognormal t.rng ~mu:t.cfg.spike_mu ~sigma:t.cfg.spike_sigma)
  else base

let submit t ~size k =
  let now = Engine.now t.engine in
  let core = least_loaded t in
  let start = max now t.free_at.(core) in
  if start - now > t.cfg.max_queue_delay_ns then t.dropped <- t.dropped + 1
  else begin
    let svc = service_time t ~size in
    let finish = start + svc in
    t.free_at.(core) <- finish;
    t.busy_ns <- t.busy_ns + svc;
    Engine.at t.engine ~time:(finish + t.cfg.wakeup_latency_ns) (fun () ->
        t.processed <- t.processed + 1;
        k ())
  end

let processed t = t.processed
let dropped t = t.dropped
let busy_ns t = t.busy_ns

let utilization t =
  let elapsed = Engine.now t.engine in
  if elapsed = 0 then 0.0
  else
    let capacity = float_of_int (elapsed * t.cfg.cores) in
    min 1.0 (float_of_int t.busy_ns /. capacity)

let backlog_ns t =
  let now = Engine.now t.engine in
  max 0 (t.free_at.(least_loaded t) - now)
