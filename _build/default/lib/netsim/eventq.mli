(** Binary-heap event queue for the discrete-event engine.

    Events with equal timestamps fire in insertion order (a stable tie-break
    keeps runs deterministic). *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:int -> 'a -> unit
(** [time] is an absolute timestamp in nanoseconds. *)

val pop : 'a t -> (int * 'a) option
(** Removes and returns the earliest event. *)

val peek_time : 'a t -> int option
