lib/trace/dataset.ml: Array Float Hashtbl List Option Scallop_util
