lib/trace/dataset.mli: Scallop_util
