(** Synthetic campus video-conferencing workload, standing in for the
    paper's Zoom Account API dataset (Appendix B: 19,704 meetings over two
    weeks) and the derived campus-load figures.

    The generator reproduces the distributional shapes the paper reports:

    - 60% two-party meetings (§6.1), a classroom bump around 25, and a
      long tail of large meetings;
    - diurnal weekday concurrency with morning/afternoon peaks and quiet
      weekends (Figs. 20–21);
    - per-participant media activity — audio nearly always on, video on
      for most participants but decaying with meeting size, occasional
      screen share — counting only streams active for at least 10% of the
      meeting (Fig. 2);
    - byte rates for Fig. 22, with video ≈ 1.4 Mb/s and audio ≈ 50 kb/s
      per active stream. *)

type stream_kind = Audio | Video | Screen

type source = {
  participant : int;
  kind : stream_kind;
  duty : float;  (** fraction of the meeting this stream is active *)
}

type meeting = {
  id : int;
  start_ns : int;
  duration_ns : int;
  size : int;  (** maximum concurrent participants *)
  sources : source list;
}

type t = { meetings : meeting array; horizon_ns : int }

val generate :
  Scallop_util.Rng.t -> ?days:int -> ?meetings:int -> unit -> t
(** Defaults: 14 days, 19,704 meetings. *)

val active_sources : meeting -> source list
(** Sources with duty >= 10% — the paper's counting rule. *)

val streams_at_sfu : meeting -> int
(** Media streams the SFU carries for this meeting: every active source is
    received once and fanned out to the other [size - 1] participants,
    i.e. [sources * size] stream endpoints (the 2N^2 upper bound of
    Fig. 2 when everyone shares audio and video). *)

val two_party_fraction : t -> float

val fig2_rows : t -> (int * int * float * int * int) list
(** Per meeting size: [(size, min, median, max, bound)] of
    {!streams_at_sfu}, with [bound = 2 * size^2]. *)

val concurrency_series :
  t -> bin_ns:int -> Scallop_util.Timeseries.t * Scallop_util.Timeseries.t
(** (concurrent meetings, concurrent participants), averaged per bin. *)

val byte_rate_series :
  t -> bin_ns:int -> Scallop_util.Timeseries.t * Scallop_util.Timeseries.t
(** (software SFU bytes/s, Scallop switch-agent bytes/s) over time: a
    software SFU touches every media byte (uplinks + fan-out), while the
    agent sees only the control-plane share (0.35% of bytes, Table 1). *)

val video_bps : float
val audio_bps : float
val agent_byte_share : float
