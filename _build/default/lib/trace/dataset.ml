module Rng = Scallop_util.Rng
module Timeseries = Scallop_util.Timeseries

type stream_kind = Audio | Video | Screen

type source = { participant : int; kind : stream_kind; duty : float }

type meeting = {
  id : int;
  start_ns : int;
  duration_ns : int;
  size : int;
  sources : source list;
}

type t = { meetings : meeting array; horizon_ns : int }

let video_bps = 800_000.0
let audio_bps = 50_000.0
let agent_byte_share = 0.0035

let hour_ns = 3_600_000_000_000
let day_ns = 24 * hour_ns
let minute_ns = 60_000_000_000

(* --- meeting-size distribution (60% two-party, classroom bump, tail) ---- *)

let sample_size rng =
  let u = Rng.float rng 1.0 in
  if u < 0.60 then 2
  else if u < 0.90 then 3 + int_of_float (Rng.exponential rng 3.0)
  else if u < 0.97 then 18 + Rng.int rng 15
  else min 150 (30 + int_of_float (Rng.pareto rng ~scale:5.0 ~shape:1.8))

(* --- diurnal start-time distribution ------------------------------------ *)

let weekday_weight day =
  match day mod 7 with
  | 5 -> 0.12 (* Saturday *)
  | 6 -> 0.10 (* Sunday *)
  | _ -> 1.0

let hour_weight h =
  let g mu sigma = exp (-.((float_of_int h -. mu) ** 2.0) /. (2.0 *. sigma *. sigma)) in
  0.08 +. g 10.0 1.8 +. (0.9 *. g 14.5 2.2)

let sample_start rng ~days =
  (* weighted day *)
  let day_weights = Array.init days weekday_weight in
  let total_d = Array.fold_left ( +. ) 0.0 day_weights in
  let rec pick_day u i =
    if i >= days - 1 then i
    else if u < day_weights.(i) then i
    else pick_day (u -. day_weights.(i)) (i + 1)
  in
  let day = pick_day (Rng.float rng total_d) 0 in
  let hour_weights = Array.init 24 hour_weight in
  let total_h = Array.fold_left ( +. ) 0.0 hour_weights in
  let rec pick_hour u i =
    if i >= 23 then i else if u < hour_weights.(i) then i else pick_hour (u -. hour_weights.(i)) (i + 1)
  in
  let hour = pick_hour (Rng.float rng total_h) 0 in
  let within =
    if Rng.bernoulli rng 0.6 then (* meetings tend to start on the half hour *)
      Rng.int rng 2 * 30 * minute_ns
    else Rng.int rng hour_ns
  in
  (day * day_ns) + (hour * hour_ns) + within

let sample_duration rng ~size =
  let mins =
    if size = 2 then 3.0 +. Rng.exponential rng 25.0
    else if size >= 18 && size <= 35 then 50.0 +. Rng.float rng 30.0
    else Rng.lognormal rng ~mu:(log 35.0) ~sigma:0.6
  in
  int_of_float (Float.min mins 240.0 *. float_of_int minute_ns)

(* --- per-participant stream activity ------------------------------------ *)

let sample_sources rng ~size =
  let sources = ref [] in
  for p = 0 to size - 1 do
    (* audio: nearly everyone, occasionally below the 10%-duty bar *)
    if Rng.bernoulli rng 0.93 then
      sources :=
        { participant = p; kind = Audio; duty = Rng.uniform rng 0.3 1.0 } :: !sources
    else if Rng.bernoulli rng 0.5 then
      sources := { participant = p; kind = Audio; duty = Rng.float rng 0.1 } :: !sources;
    (* video: common, but cameras go off as meetings grow *)
    let video_prob = Float.max 0.25 (0.85 -. (0.012 *. float_of_int size)) in
    if Rng.bernoulli rng video_prob then
      sources :=
        { participant = p; kind = Video; duty = Rng.uniform rng 0.15 1.0 } :: !sources
  done;
  (* screen share: usually one presenter *)
  if Rng.bernoulli rng 0.25 then
    sources :=
      { participant = Rng.int rng size; kind = Screen; duty = Rng.uniform rng 0.1 0.9 }
      :: !sources;
  !sources

let generate rng ?(days = 14) ?(meetings = 19_704) () =
  let horizon_ns = days * day_ns in
  let make id =
    let size = sample_size rng in
    let start_ns = sample_start rng ~days in
    let duration_ns = min (sample_duration rng ~size) (horizon_ns - start_ns) in
    { id; start_ns; duration_ns; size; sources = sample_sources rng ~size }
  in
  { meetings = Array.init meetings make; horizon_ns }

let active_sources m = List.filter (fun s -> s.duty >= 0.1) m.sources
let streams_at_sfu m = List.length (active_sources m) * m.size

let two_party_fraction t =
  let two = Array.fold_left (fun acc m -> if m.size = 2 then acc + 1 else acc) 0 t.meetings in
  float_of_int two /. float_of_int (Array.length t.meetings)

let fig2_rows t =
  let by_size = Hashtbl.create 64 in
  Array.iter
    (fun m ->
      let cur = Option.value (Hashtbl.find_opt by_size m.size) ~default:[] in
      Hashtbl.replace by_size m.size (streams_at_sfu m :: cur))
    t.meetings;
  Hashtbl.fold (fun size streams acc -> (size, streams) :: acc) by_size []
  |> List.sort compare
  |> List.map (fun (size, streams) ->
         let sorted = List.sort compare streams in
         let n = List.length sorted in
         let median =
           let arr = Array.of_list (List.map float_of_int sorted) in
           Scallop_util.Stats.percentile_of_array arr 50.0
         in
         (size, List.nth sorted 0, median, List.nth sorted (n - 1), 2 * size * size))

let overlap_bins m ~bin_ns f =
  let first = m.start_ns / bin_ns in
  let last = (m.start_ns + m.duration_ns) / bin_ns in
  for b = first to last do
    f (b * bin_ns)
  done

let concurrency_series t ~bin_ns =
  let meetings_ts = Timeseries.create ~bin_ns in
  let participants_ts = Timeseries.create ~bin_ns in
  Array.iter
    (fun m ->
      overlap_bins m ~bin_ns (fun bt ->
          Timeseries.incr meetings_ts bt;
          Timeseries.add participants_ts bt (float_of_int m.size)))
    t.meetings;
  (meetings_ts, participants_ts)

(* Bytes/second a software split-proxy SFU handles for one meeting: every
   active source arrives once and leaves (size-1) times — except that
   receivers render a bounded gallery, so their aggregate video download
   is capped (Zoom shows at most ~25 tiles and shrinks per-tile bitrate),
   and only a few concurrent speakers' audio is forwarded. *)
let max_video_down_bps = 2.0e6
let max_forwarded_speakers = 3.0

let meeting_software_bps m =
  let sources = active_sources m in
  let sum kind =
    List.fold_left
      (fun acc s -> if s.kind = kind then acc +. s.duty else acc)
      0.0 sources
  in
  let video_cap =
    (* gallery view for ordinary meetings; speaker view for large ones *)
    if m.size >= 25 then 1.0e6 else max_video_down_bps
  in
  let video_down = Float.min video_cap (sum Video *. video_bps) in
  let audio_down = Float.min max_forwarded_speakers (sum Audio) *. audio_bps in
  let screen_down = Float.min 1.0 (sum Screen) *. video_bps in
  float_of_int m.size *. (video_down +. audio_down +. screen_down)

let byte_rate_series t ~bin_ns =
  let software = Timeseries.create ~bin_ns in
  let agent = Timeseries.create ~bin_ns in
  let bin_s = float_of_int bin_ns /. 1e9 in
  Array.iter
    (fun m ->
      let bps = meeting_software_bps m /. 8.0 in
      overlap_bins m ~bin_ns (fun bt ->
          Timeseries.add software bt (bps *. bin_s);
          Timeseries.add agent bt (bps *. agent_byte_share *. bin_s)))
    t.meetings;
  (software, agent)
