type t = {
  renditions : int array;
  out_ssrc : int;
  mutable active : int;
  mutable pending : int option;
  (* per-epoch fixed offsets: out = in - offset, rebased at each switch so
     outputs stay strictly above everything already emitted *)
  mutable seq_offset : int;
  mutable frame_offset : int;
  mutable last_out_seq : int;
  mutable last_out_frame : int;
  mutable started : bool;
}

let create ~renditions =
  if Array.length renditions = 0 then invalid_arg "Simulcast.create: no renditions";
  {
    renditions;
    out_ssrc = renditions.(0);
    active = 0;
    pending = None;
    seq_offset = 0;
    frame_offset = 0;
    last_out_seq = 0;
    last_out_frame = 0;
    started = false;
  }

let active t = t.active
let pending t = t.pending

let request_switch t idx =
  if idx < 0 || idx >= Array.length t.renditions then
    invalid_arg "Simulcast.request_switch: no such rendition";
  if idx = t.active then t.pending <- None else t.pending <- Some idx

type action = Forward of { ssrc : int; seq : int; frame : int } | Drop

let index_of t ssrc =
  let rec find i =
    if i >= Array.length t.renditions then None
    else if t.renditions.(i) = ssrc then Some i
    else find (i + 1)
  in
  find 0

let emit t ~seq ~frame =
  let out_seq = (seq - t.seq_offset) land 0xFFFF in
  let out_frame = (frame - t.frame_offset) land 0xFFFF in
  (* track the forwarding frontier for the next rebase *)
  if Rtp.Packet.seq_sub out_seq t.last_out_seq > 0 then t.last_out_seq <- out_seq;
  if (out_frame - t.last_out_frame) land 0xFFFF < 0x8000 then t.last_out_frame <- out_frame;
  Forward { ssrc = t.out_ssrc; seq = out_seq; frame = out_frame }

(* Rebase onto a new epoch: the switch-over packet becomes last_out_seq+1,
   its frame last_out_frame+1, so the spliced stream stays gapless and can
   never revisit an already-emitted sequence number. *)
let rebase t ~seq ~frame =
  t.seq_offset <- (seq - ((t.last_out_seq + 1) land 0xFFFF)) land 0xFFFF;
  t.frame_offset <- (frame - ((t.last_out_frame + 1) land 0xFFFF)) land 0xFFFF

let on_packet t ~ssrc ~seq ~frame ~keyframe_start =
  match index_of t ssrc with
  | None -> Drop
  | Some idx ->
      if not t.started then begin
        if idx = t.active then begin
          t.started <- true;
          t.seq_offset <- 0;
          t.frame_offset <- 0;
          t.last_out_seq <- seq;
          t.last_out_frame <- frame;
          Forward { ssrc = t.out_ssrc; seq; frame }
        end
        else Drop
      end
      else if Some idx = t.pending && keyframe_start then begin
        rebase t ~seq ~frame;
        t.active <- idx;
        t.pending <- None;
        emit t ~seq ~frame
      end
      else if idx = t.active then emit t ~seq ~frame
      else Drop
