module Dd = Av1.Dd

type variant = S_LM | S_LR

let words_per_stream = function S_LM -> 3 | S_LR -> 6

type action = Forward of int | Drop

type t = {
  variant : variant;
  mutable target : Dd.decode_target;
  mutable initialized : bool;
  mutable last_seq : int;  (** highest original sequence observed *)
  mutable last_frame : int;  (** frame number of [last_seq] *)
  mutable offset : int;  (** original - rewritten *)
  mutable mask_boundary : int;
      (** first seq at/after the most recent masked gap; masked seqs below
          this must never be emitted (duplicate-avoidance guard) *)
  (* S-LR extra state *)
  mutable first_seq_cur : int;  (** first seq seen of the latest frame *)
  mutable cur_frame_ended : bool;  (** end-of-frame packet observed *)
}

let create variant ~target =
  {
    variant;
    target;
    initialized = false;
    last_seq = 0;
    last_frame = 0;
    offset = 0;
    mask_boundary = 0;
    first_seq_cur = 0;
    cur_frame_ended = false;
  }

let set_target t target = t.target <- target
let offset t = t.offset

let reset t =
  t.initialized <- false;
  t.last_seq <- 0;
  t.last_frame <- 0;
  t.offset <- 0;
  t.mask_boundary <- 0;
  t.first_seq_cur <- 0;
  t.cur_frame_ended <- false

(* L1T3 cycle position -> temporal layer (paper Fig. 9): T0 T2 T1 T2. *)
let layer_of_frame frame =
  match frame land 3 with 0 -> Dd.T0 | 1 -> Dd.T2 | 2 -> Dd.T1 | _ -> Dd.T2

let suppressed_by_cadence target frame =
  not (Dd.target_includes target (layer_of_frame frame))

(* Frames strictly between [f1] and [f2] (16-bit space). Returns None when
   the distance is implausibly large (treat as loss/garbage). *)
let frames_between f1 f2 =
  let d = (f2 - f1) land 0xFFFF in
  if d = 0 || d > 64 then None
  else Some (List.init (d - 1) (fun i -> (f1 + i + 1) land 0xFFFF))

let emit t seq = Forward ((seq - t.offset) land 0xFFFF)

let enter_frame t ~seq ~frame ~end_of_frame =
  t.last_frame <- frame;
  t.first_seq_cur <- seq;
  t.cur_frame_ended <- end_of_frame

let advance t ~seq ~frame ~end_of_frame =
  if frame <> t.last_frame then enter_frame t ~seq ~frame ~end_of_frame
  else if end_of_frame then t.cur_frame_ended <- true;
  t.last_seq <- seq

(* How much of a [gap] before this packet can be masked as intentional. *)
let maskable t ~gap ~frame ~start_of_frame =
  match frames_between t.last_frame frame with
  | None -> 0
  | Some [] -> 0 (* consecutive or same frame: any gap is pure loss *)
  | Some between ->
      if not (List.for_all (suppressed_by_cadence t.target) between) then 0
      else begin
        match t.variant with
        | S_LM ->
            (* trust the cadence: the whole gap was suppression *)
            gap
        | S_LR ->
            (* If the previous frame completed and this packet opens its
               frame, the gap is exactly the suppressed frames. Otherwise
               part of the gap is loss inside a kept frame; stay
               conservative and leave two sequence numbers unmasked so the
               receiver recovers the lost data via NACK. *)
            if t.cur_frame_ended && start_of_frame then gap else max 0 (gap - 2)
      end

let on_packet t ~seq ~frame ~start_of_frame ~end_of_frame =
  if not t.initialized then begin
    t.initialized <- true;
    t.last_seq <- seq;
    t.mask_boundary <- seq;
    enter_frame t ~seq ~frame ~end_of_frame;
    emit t seq
  end
  else begin
    let delta = Rtp.Packet.seq_sub seq t.last_seq in
    if delta = 1 then begin
      advance t ~seq ~frame ~end_of_frame;
      emit t seq
    end
    else if delta > 1 then begin
      let gap = delta - 1 in
      let masked = maskable t ~gap ~frame ~start_of_frame in
      if masked > 0 then begin
        t.offset <- t.offset + masked;
        t.mask_boundary <- seq
      end;
      advance t ~seq ~frame ~end_of_frame;
      emit t seq
    end
    else if delta = 0 then Drop
    else if t.offset = 0 then
      (* no rewriting has happened on this stream yet, so the mapping is
         the identity and any old packet (a retransmission, say) can pass
         through without any duplication risk *)
      emit t seq
    else begin
      (* reordered (old) packet under an active offset *)
      match t.variant with
      | S_LM ->
          (* one step back is safe if it is not inside a masked region *)
          if delta = -1 && Rtp.Packet.seq_sub seq t.mask_boundary >= 0 then emit t seq
          else Drop
      | S_LR ->
          if
            frame = t.last_frame
            && Rtp.Packet.seq_sub seq t.first_seq_cur >= 0
            && Rtp.Packet.seq_sub seq t.mask_boundary >= 0
          then begin
            (* late packet of the current frame: offset unchanged since the
               frame began, rewrite is exact *)
            if end_of_frame then t.cur_frame_ended <- true;
            emit t seq
          end
          else if suppressed_by_cadence t.target frame then
            (* straggler of a suppressed frame: silence it *)
            Drop
          else if delta = -1 && Rtp.Packet.seq_sub seq t.mask_boundary >= 0 then emit t seq
          else Drop
    end
  end

module Oracle = struct
  type t = { mutable suppressed : int array; mutable n : int }

  let create () = { suppressed = Array.make 64 0; n = 0 }

  let note_suppressed_at t seq =
    if t.n = Array.length t.suppressed then begin
      let bigger = Array.make (2 * t.n) 0 in
      Array.blit t.suppressed 0 bigger 0 t.n;
      t.suppressed <- bigger
    end;
    t.suppressed.(t.n) <- seq;
    t.n <- t.n + 1

  (* count of suppressed seqs strictly below [seq]; the array is built in
     ascending order, so binary search *)
  let count_below t seq =
    let lo = ref 0 and hi = ref t.n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.suppressed.(mid) < seq then lo := mid + 1 else hi := mid
    done;
    !lo

  let on_packet t ~seq = seq - count_below t seq
  let note_suppressed = note_suppressed_at
end
