type params = {
  pre_trees : int;
  pre_l1_nodes : int;
  meetings_per_tree : int;
  qualities : int;
  switch_bps : float;
  uplink_bps_per_sender : float;
  tracker_cells : int;
  adapted_fraction : float;
  leg_table_entries : int;  (** egress match-action entries (2^20) *)
}

let default =
  {
    pre_trees = 65_536;
    pre_l1_nodes = 16_777_216;
    meetings_per_tree = 2;
    qualities = 3;
    switch_bps = 12.8e12;
    uplink_bps_per_sender = 3.1e6;
    tracker_cells = 6 * 65_536;
    adapted_fraction = 0.1;
    leg_table_entries = 1 lsl 20;
  }

type design = Two_party | Nra | Ra_r | Ra_sr

let ceil_div a b = (a + b - 1) / b

(* Concurrent rate-adapted output streams the Stream Tracker can hold. *)
let tracker_streams p variant = p.tracker_cells / Seq_rewrite.words_per_stream variant

let check ~participants ~senders =
  if participants < 2 then invalid_arg "Capacity: participants < 2";
  if senders < 1 || senders > participants then invalid_arg "Capacity: senders"

let bottlenecks p variant design ~participants:n ~senders:s =
  check ~participants:n ~senders:s;
  let unlimited = max_int / 2 in
  let fabric_bps_per_meeting =
    (* every sender's stream crosses the fabric once in and once out per
       receiver; ingress + egress are both charged *)
    let ingress = float_of_int s *. p.uplink_bps_per_sender in
    let egress =
      match design with
      | Two_party -> float_of_int s *. p.uplink_bps_per_sender
      | _ -> float_of_int (s * (n - 1)) *. p.uplink_bps_per_sender
    in
    ingress +. egress
  in
  let bandwidth = int_of_float (p.switch_bps /. fabric_bps_per_meeting) in
  (* The per-participant address table only binds the two-party fast path:
     multi-party meetings exhaust PRE trees/nodes long before exact-match
     state, while two-party meetings use no PRE resources at all, leaving
     the 2^20-entry table (2 entries per meeting) as their ~533K ceiling. *)
  let leg_table =
    match design with
    | Two_party -> p.leg_table_entries / 2
    | Nra | Ra_r | Ra_sr -> max_int / 2
  in
  let trees =
    match design with
    | Two_party -> unlimited
    | Nra -> p.meetings_per_tree * p.pre_trees
    | Ra_r -> p.meetings_per_tree * p.pre_trees / p.qualities
    | Ra_sr ->
        (* two senders per tree; meetings with an odd sender count share
           their leftover pair slot with another meeting, giving the
           paper's 2T/(qN) closed form *)
        2 * p.pre_trees / (p.qualities * s)
  in
  let l1_nodes =
    match design with
    | Two_party -> unlimited
    | Nra -> p.pre_l1_nodes / n
    | Ra_r -> p.pre_l1_nodes / (p.qualities * n)
    | Ra_sr -> p.pre_l1_nodes / (p.qualities * ceil_div s 2 * 2 * (n - 1))
  in
  let tracker =
    match design with
    | Two_party | Nra -> unlimited
    | Ra_r | Ra_sr ->
        let adapted_legs =
          max 1
            (int_of_float
               (Float.round (p.adapted_fraction *. float_of_int (s * (n - 1)))))
        in
        tracker_streams p variant / adapted_legs
  in
  [
    ("PRE trees", trees);
    ("PRE L1 nodes", l1_nodes);
    ("switch bandwidth", bandwidth);
    ("egress leg table", leg_table);
    ("stream tracker", tracker);
  ]

let bottleneck ?(params = default) ?(rewrite = Seq_rewrite.S_LR) design ~participants
    ~senders () =
  bottlenecks params rewrite design ~participants ~senders
  |> List.fold_left (fun (bn, bv) (name, v) -> if v < bv then (name, v) else (bn, bv))
       ("none", max_int)

let meetings_supported ?params ?rewrite design ~participants ~senders () =
  snd (bottleneck ?params ?rewrite design ~participants ~senders ())

let best_design ?(params = default) ?(rewrite = Seq_rewrite.S_LR) ~rate_adapted
    ~sender_specific ~participants ~senders () =
  let candidates =
    if participants = 2 then [ Two_party ]
    else if not rate_adapted then [ Nra ]
    else if sender_specific then [ Ra_sr ]
    else [ Ra_r ]
  in
  let scored =
    List.map
      (fun d -> (d, meetings_supported ~params ~rewrite d ~participants ~senders ()))
      candidates
  in
  List.fold_left (fun (bd, bv) (d, v) -> if v > bv then (d, v) else (bd, bv))
    (List.hd scored) (List.tl scored)

let gain_over_software ?params ?rewrite design ~participants ~senders () =
  let scallop = meetings_supported ?params ?rewrite design ~participants ~senders () in
  let software = Sfu.Capacity.meetings_supported ~participants ~senders ~media_types:2 () in
  float_of_int scallop /. float_of_int software
