(** Simulcast forwarding — the "related technology" the paper names next
    to SVC (§3): the sender encodes the same video at several bitrates as
    independent streams (renditions), and the SFU forwards exactly one of
    them to each receiver, switching renditions as capacity changes.

    Where SVC adaptation drops packets of one stream (leaving gaps to
    mask), simulcast adaptation {e splices} streams: the receiver
    negotiated a single continuous stream, so on a switch the data plane
    must rewrite the SSRC, the sequence numbers and the AV1 frame numbers
    so the next rendition continues seamlessly where the previous one left
    off. All three are fixed-offset header rewrites per epoch — precisely
    the operation class the paper argues programmable switches do well.

    Switches take effect at the next key frame of the target rendition
    (the agent asks the sender for one via PLI), and the never-duplicate
    invariant of {!Seq_rewrite} carries over: each epoch is rebased above
    everything already emitted. *)

type t

val create : renditions:int array -> t
(** [renditions] are the SSRCs, highest quality first. The output stream
    uses the first rendition's SSRC; forwarding starts active on it. *)

val active : t -> int
(** Index of the rendition currently forwarded. *)

val request_switch : t -> int -> unit
(** Ask for a rendition change; it engages at that rendition's next
    key-frame start. Requesting the active rendition cancels any pending
    switch. *)

val pending : t -> int option

type action = Forward of { ssrc : int; seq : int; frame : int } | Drop

val on_packet :
  t -> ssrc:int -> seq:int -> frame:int -> keyframe_start:bool -> action
(** Process one video packet of any rendition. Packets of inactive
    renditions are dropped (cheaply, by SSRC match) unless they open the
    key frame a pending switch is waiting for. *)
