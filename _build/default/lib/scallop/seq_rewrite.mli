(** Hardware-amenable sequence-number rewriting (paper §6.2, Fig. 12).

    When Scallop's data plane suppresses SVC layers, the surviving packets
    have gaps in their RTP sequence numbers; receivers would read those
    gaps as network loss and request retransmissions. The egress pipeline
    therefore rewrites sequence numbers to mask {e intentional} gaps. A
    perfect rewrite is impossible when suppression coincides with loss and
    reordering, so the paper designs heuristics whose mistakes are
    deliberately biased: {b a sequence number is never emitted twice}
    (duplicates permanently corrupt the decoder), at the cost of
    occasionally leaving a gap that triggers a spurious retransmission.

    Two variants are modelled, matching the paper:

    - {b S-LM} (low memory): 3 state words per stream — highest input
      sequence, highest frame number, current offset. Gaps whose
      intervening frames are all suppressed by the cadence are masked;
      reordered packets are tolerated only one step back; anything older
      is dropped.
    - {b S-LR} (low retransmission): 3 extra words — first/highest
      sequence of the latest frame and whether it ended — allowing
      arbitrary reordering within the current frame, silent dropping of
      late packets from suppressed frames, and smarter handling of gaps
      that mix suppression with loss.

    State words are kept in {!Tofino.Register} arrays by the data plane;
    this module implements the per-packet logic over that state. *)

type variant = S_LM | S_LR

val words_per_stream : variant -> int
(** Register cells consumed per rate-adapted stream: 3 for S-LM, 6 for
    S-LR — the memory-vs-overhead trade-off of Figs. 15 and 17. *)

type action =
  | Forward of int  (** Emit with this rewritten sequence number. *)
  | Drop  (** Suppress silently (never risk a duplicate). *)

type t

val create : variant -> target:Av1.Dd.decode_target -> t
val set_target : t -> Av1.Dd.decode_target -> unit
(** The control plane's frame-skip cadence for this stream (which frames
    of the L1T3 cycle are suppressed). *)

val reset : t -> unit
(** Forget all per-stream state; the next packet re-initializes. The data
    plane resets a stream's tracker when adaptation (re)engages, exactly
    as the control plane would reallocate the stream index. *)

val on_packet :
  t -> seq:int -> frame:int -> start_of_frame:bool -> end_of_frame:bool -> action
(** Process one {e surviving} packet (suppressed packets never reach the
    egress rewrite stage). [seq] and [frame] are the original 16-bit
    values; the frame-boundary flags come from the AV1 dependency
    descriptor the parser already extracted. *)

val suppressed_by_cadence : Av1.Dd.decode_target -> int -> bool
(** [suppressed_by_cadence target frame] — does the cadence drop this
    frame number? (L1T3 cycle position = [frame mod 4].) *)

val offset : t -> int
(** Current sequence offset (diagnostics). *)

(** Ideal rewriter used as the Fig. 18 baseline: told exactly which
    packets were suppressed, it computes the gap-free output an oracle
    would produce. *)
module Oracle : sig
  type t

  val create : unit -> t

  val note_suppressed : t -> int -> unit
  (** [note_suppressed t seq] — called once per intentionally suppressed
      packet, in stream order, with an {e unwrapped} sequence number. *)

  val on_packet : t -> seq:int -> int
  (** Exact rewritten (unwrapped) sequence number for a surviving packet. *)
end
