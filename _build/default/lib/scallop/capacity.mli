(** Closed-form capacity model of the Scallop switch — the basis of the
    paper's scalability results (Figs. 15–17 and the §6.1 headline
    numbers: 128K NRA / 42.7K RA-R / 4.3K RA-SR(10p) / 533K two-party
    meetings).

    For each replication-tree design the supported meeting count is the
    minimum over the hardware bottlenecks:

    - PRE trees (65,536; m = 2 meetings share a tree where the design
      allows);
    - PRE L1 nodes (2^24);
    - switch bandwidth (12.8 Tb/s, charged ingress + egress);
    - Stream-Tracker registers for rate-adapted legs (65,536 streams with
      S-LR's six words, 131,072 with S-LM's three — DESIGN.md §4).

    Calibration constants are in DESIGN.md §4; the shapes (who wins, by
    what factor, where crossovers fall) are the reproduction target, not
    the authors' exact testbed numbers. *)

type params = {
  pre_trees : int;
  pre_l1_nodes : int;
  meetings_per_tree : int;  (** m = 2 *)
  qualities : int;  (** q = 3 *)
  switch_bps : float;  (** 12.8e12 *)
  uplink_bps_per_sender : float;  (** ~3.1 Mb/s video+audio+overhead *)
  tracker_cells : int;  (** 6 x 65,536 register cells *)
  adapted_fraction : float;
      (** fraction of downstream legs under active rate adaptation *)
  leg_table_entries : int;
      (** egress match-action table entries (2^20) — the state that bounds
          the two-party fast path at ~533K meetings *)
}

val default : params

type design = Two_party | Nra | Ra_r | Ra_sr

val meetings_supported :
  ?params:params ->
  ?rewrite:Seq_rewrite.variant ->
  design ->
  participants:int ->
  senders:int ->
  unit ->
  int
(** Concurrent meetings of the given shape the switch sustains under the
    given design ([rewrite] matters only for rate-adapted designs;
    default S_LR, the conservative bound). *)

val bottleneck :
  ?params:params ->
  ?rewrite:Seq_rewrite.variant ->
  design ->
  participants:int ->
  senders:int ->
  unit ->
  string * int
(** The binding constraint's name alongside the count. *)

val best_design :
  ?params:params -> ?rewrite:Seq_rewrite.variant -> rate_adapted:bool ->
  sender_specific:bool -> participants:int -> senders:int -> unit -> design * int
(** The design the switch agent would pick for this meeting shape and the
    resulting capacity. *)

val gain_over_software :
  ?params:params -> ?rewrite:Seq_rewrite.variant -> design ->
  participants:int -> senders:int -> unit -> float
(** Scallop meetings / 32-core-server meetings for the same shape
    (software model from {!Sfu.Capacity}, 2 media types). *)
