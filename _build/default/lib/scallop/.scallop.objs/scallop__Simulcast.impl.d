lib/scallop/simulcast.ml: Array Rtp
