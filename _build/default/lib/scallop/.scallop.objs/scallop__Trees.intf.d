lib/scallop/trees.mli: Av1 Tofino
