lib/scallop/controller.mli: Dataplane Netsim Scallop_util Switch_agent Webrtc
