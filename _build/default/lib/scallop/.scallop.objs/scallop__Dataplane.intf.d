lib/scallop/dataplane.mli: Av1 Netsim Scallop_util Seq_rewrite Tofino Trees
