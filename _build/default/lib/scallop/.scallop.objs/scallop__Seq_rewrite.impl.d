lib/scallop/seq_rewrite.ml: Array Av1 List Rtp
