lib/scallop/simulcast.mli:
