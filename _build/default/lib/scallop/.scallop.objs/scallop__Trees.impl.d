lib/scallop/trees.ml: Array Av1 Fun Hashtbl List Option Printf Tofino
