lib/scallop/capacity.ml: Float List Seq_rewrite Sfu
