lib/scallop/capacity.mli: Seq_rewrite
