lib/scallop/seq_rewrite.mli: Av1
