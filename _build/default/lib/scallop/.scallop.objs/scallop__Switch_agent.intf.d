lib/scallop/switch_agent.mli: Av1 Dataplane Netsim Scallop_util Seq_rewrite Trees
