lib/scallop/dataplane.ml: Array Av1 Bytes Hashtbl List Netsim Option Printf Rtp Scallop_util Seq_rewrite Simulcast Tofino Trees
