lib/scallop/controller.ml: Array Av1 Codec Dataplane Hashtbl List Netsim Option Printf Scallop_util Sdp Switch_agent Webrtc
