lib/scallop/switch_agent.ml: Array Av1 Codec Dataplane Hashtbl List Netsim Printf Rtp Scallop_util Seq_rewrite Trees
