(** Scallop's centralized controller — the signaling server (paper §5.1).

    The controller exchanges SDP with participants, {e intercepts} each
    message and rewrites its connection candidates so that the switch
    appears to every participant as its sole peer, then programs the
    switch agent with the resulting session state. It is involved only
    when a session is created, a participant joins or leaves, or a media
    stream starts/stops — never on the media path.

    One controller can manage several switch agents (the cascading-SFU
    architecture of Appendix A); [create] takes the agent list. *)

type t

val create :
  Netsim.Engine.t ->
  Netsim.Network.t ->
  Scallop_util.Rng.t ->
  agents:(Switch_agent.t * Dataplane.t) list ->
  unit ->
  t
(** Meetings are placed round-robin across the given switches; each
    meeting lives wholly on one switch (splitting a meeting across
    switches — true cascading — is future work in the paper as well). *)

type meeting_id = int
type participant_id = int

val create_meeting : t -> meeting_id

val join :
  ?home:int -> ?simulcast:bool -> t -> meeting_id -> Webrtc.Client.t ->
  send_media:bool -> participant_id
(** Full signaling round: the participant's SDP offer is built, shipped
    through the textual SDP codec, candidate-rewritten to splice in the
    SFU, answered — and every existing participant receives a rewritten
    offer for the new sender's streams. All data-plane/agent state is
    installed before the answer returns.

    [home] attaches the participant to a specific switch (by index into
    the agent list); when it differs from other participants' homes the
    controller builds cascade relays between the switches (Appendix A):
    the upstream switch forwards the sender's full-quality stream once to
    the downstream switch, which replicates and rate-adapts for its local
    receivers. Defaults to the meeting's primary switch.

    [simulcast] makes the participant send three renditions instead of
    one SVC stream; the switch splices each receiver onto the best
    rendition its downlink affords (no cascade support for simulcast
    uplinks). *)

val leave : t -> participant_id -> unit

val start_screen_share : t -> participant_id -> unit
(** The paper's third controller trigger: a participant starts sharing a
    new media type mid-call. A fresh stream (own SSRCs, own uplink, own
    legs — and own cascade relays when the meeting spans switches) is
    signalled to every other participant. *)

val stop_screen_share : t -> participant_id -> unit

val screen_connection :
  t -> participant_id -> from:participant_id -> Webrtc.Client.connection option
(** The receive connection carrying [from]'s screen share, if any. *)

val participant_sender_info : t -> participant_id -> (int * int * int) option
(** [(egress_port, video_ssrc, audio_ssrc)] if the participant sends. *)

val recv_connection :
  t -> participant_id -> from:participant_id -> Webrtc.Client.connection option
(** The receive connection carrying [from]'s media at this participant. *)

val send_connection : t -> participant_id -> Webrtc.Client.connection option

val agent_meeting_id : t -> meeting_id -> Switch_agent.meeting_id
val agent_participant_id : t -> participant_id -> int

val sdp_messages : t -> int
(** SDP messages exchanged (each parsed and re-serialized through the
    {!Sdp} codec). *)

val meeting_participants : t -> meeting_id -> participant_id list

val meeting_switch : t -> meeting_id -> Dataplane.t
(** The switch hosting a meeting (placement introspection). *)

val switch_count : t -> int
val participant_home : t -> participant_id -> int
