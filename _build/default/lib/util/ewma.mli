(** Exponentially-weighted moving average.

    Used by the switch agent's feedback filter (paper §5.3) to smooth each
    receiver's bandwidth estimates before selecting the best-performing
    downlink, and by GCC's adaptive threshold. *)

type t

val create : alpha:float -> t
(** [create ~alpha] with [0 < alpha <= 1]; higher alpha weighs recent
    samples more. The average is undefined until the first observation. *)

val observe : t -> float -> unit

val value : t -> float
(** Current average. @raise Invalid_argument if nothing was observed. *)

val value_opt : t -> float option
val count : t -> int
val reset : t -> unit
