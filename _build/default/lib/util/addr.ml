type t = { ip : int; port : int }

let v ip port = { ip = ip land 0xFFFFFFFF; port = port land 0xFFFF }

let ip_of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
      let part x =
        match int_of_string_opt x with
        | Some v when v >= 0 && v <= 255 -> v
        | _ -> invalid_arg ("Addr.ip_of_string: " ^ s)
      in
      (part a lsl 24) lor (part b lsl 16) lor (part c lsl 8) lor part d
  | _ -> invalid_arg ("Addr.ip_of_string: " ^ s)

let ip_to_string ip =
  Printf.sprintf "%d.%d.%d.%d" ((ip lsr 24) land 0xFF) ((ip lsr 16) land 0xFF)
    ((ip lsr 8) land 0xFF) (ip land 0xFF)

let of_string s =
  match String.rindex_opt s ':' with
  | None -> invalid_arg ("Addr.of_string: " ^ s)
  | Some i ->
      let ip = ip_of_string (String.sub s 0 i) in
      let port =
        match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
        | Some p when p >= 0 && p <= 0xFFFF -> p
        | _ -> invalid_arg ("Addr.of_string: " ^ s)
      in
      { ip; port }

let to_string t = Printf.sprintf "%s:%d" (ip_to_string t.ip) t.port
let compare a b = if a.ip <> b.ip then compare a.ip b.ip else compare a.port b.port
let equal a b = a.ip = b.ip && a.port = b.port
let hash t = (t.ip * 65599) lxor t.port
let pp fmt t = Format.pp_print_string fmt (to_string t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
