type t = { title : string; columns : string list; mutable rows : string list list }

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: row arity mismatch";
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  let record_widths row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter record_widths all;
  let buf = Buffer.create 1024 in
  let pad i cell =
    let extra = widths.(i) - String.length cell in
    cell ^ String.make extra ' '
  in
  let add_line row =
    Buffer.add_string buf "| ";
    Buffer.add_string buf (String.concat " | " (List.mapi pad row));
    Buffer.add_string buf " |\n"
  in
  let rule =
    "+" ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths)) ^ "+\n"
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf rule;
  add_line t.columns;
  Buffer.add_string buf rule;
  List.iter add_line rows;
  Buffer.add_string buf rule;
  Buffer.contents buf

let csv_cell cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let line row = String.concat "," (List.map csv_cell row) in
  String.concat "\n" (line t.columns :: List.rev_map line t.rows) ^ "\n"

let csv_sink : (title:string -> csv:string -> unit) option ref = ref None
let set_csv_sink sink = csv_sink := sink

let print t =
  print_string (render t);
  match !csv_sink with
  | Some sink -> sink ~title:t.title ~csv:(to_csv t)
  | None -> ()

let cell_f ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let cell_i n = string_of_int n
let cell_pct r = Printf.sprintf "%.2f%%" (100.0 *. r)
