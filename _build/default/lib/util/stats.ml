module Online = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let observe t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
end

let percentile_of_array sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p <= 0.0 then sorted.(0)
  else if p >= 100.0 then sorted.(n - 1)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

module Samples = struct
  type t = {
    mutable data : float array;
    mutable n : int;
    mutable sorted : bool;
  }

  let create () = { data = Array.make 64 0.0; n = 0; sorted = true }

  let observe t x =
    if t.n = Array.length t.data then begin
      let bigger = Array.make (2 * t.n) 0.0 in
      Array.blit t.data 0 bigger 0 t.n;
      t.data <- bigger
    end;
    t.data.(t.n) <- x;
    t.n <- t.n + 1;
    t.sorted <- false

  let count t = t.n

  let ensure_sorted t =
    if not t.sorted then begin
      let live = Array.sub t.data 0 t.n in
      Array.sort compare live;
      Array.blit live 0 t.data 0 t.n;
      t.sorted <- true
    end

  let mean t =
    if t.n = 0 then invalid_arg "Stats.Samples.mean: empty";
    let sum = ref 0.0 in
    for i = 0 to t.n - 1 do
      sum := !sum +. t.data.(i)
    done;
    !sum /. float_of_int t.n

  let percentile t p =
    ensure_sorted t;
    percentile_of_array (Array.sub t.data 0 t.n) p

  let median t = percentile t 50.0
  let min t = percentile t 0.0
  let max t = percentile t 100.0

  let to_array t =
    ensure_sorted t;
    Array.sub t.data 0 t.n

  let cdf t ~points =
    if points < 2 then invalid_arg "Stats.Samples.cdf: need at least 2 points";
    List.init points (fun i ->
        let frac = float_of_int i /. float_of_int (points - 1) in
        (percentile t (100.0 *. frac), frac))
end
