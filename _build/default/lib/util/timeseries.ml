type t = { bin_ns : int; tbl : (int, float) Hashtbl.t }

let create ~bin_ns =
  if bin_ns <= 0 then invalid_arg "Timeseries.create: bin_ns";
  { bin_ns; tbl = Hashtbl.create 256 }

let bin_of t time = time / t.bin_ns

let add t time value =
  let b = bin_of t time in
  let cur = Option.value (Hashtbl.find_opt t.tbl b) ~default:0.0 in
  Hashtbl.replace t.tbl b (cur +. value)

let incr t time = add t time 1.0
let bin_ns t = t.bin_ns

let bins t =
  if Hashtbl.length t.tbl = 0 then [||]
  else begin
    let lo = ref max_int and hi = ref min_int in
    Hashtbl.iter
      (fun b _ ->
        if b < !lo then lo := b;
        if b > !hi then hi := b)
      t.tbl;
    Array.init
      (!hi - !lo + 1)
      (fun i ->
        let b = !lo + i in
        let v = Option.value (Hashtbl.find_opt t.tbl b) ~default:0.0 in
        (b * t.bin_ns, v))
  end

let rates_per_second t =
  let bin_s = float_of_int t.bin_ns /. 1e9 in
  Array.map (fun (time, v) -> (float_of_int time /. 1e9, v /. bin_s)) (bins t)

let fold t ~init ~f =
  Array.fold_left (fun acc (time, v) -> f acc time v) init (bins t)
