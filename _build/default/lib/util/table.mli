(** Minimal fixed-column ASCII table renderer for experiment output.

    Every experiment prints its paper table/figure data through this module
    so `bench/main.exe` output is uniform and diffable. *)

type t

val create : title:string -> columns:string list -> t
val add_row : t -> string list -> unit
(** Row length must equal the number of columns. *)

val render : t -> string

val print : t -> unit
(** Renders to stdout; when a CSV sink is installed (see {!set_csv_sink}),
    also emits the table as CSV. *)

val to_csv : t -> string
(** RFC-4180-style CSV: header row then data rows; cells containing
    commas or quotes are quoted. *)

val set_csv_sink : (title:string -> csv:string -> unit) option -> unit
(** Install a callback that receives every printed table as CSV — the
    bench harness uses it to export every figure's data for replotting. *)

val cell_f : ?decimals:int -> float -> string
(** Format a float cell ([decimals] defaults to 2). *)

val cell_i : int -> string
val cell_pct : float -> string
(** Format a ratio in [0,1] as a percentage with 2 decimals. *)
