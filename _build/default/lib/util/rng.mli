(** Deterministic pseudo-random number generation.

    All stochastic behaviour in the simulator flows through this module so
    that every experiment is reproducible from a single seed.  The generator
    is SplitMix64: fast, high quality for simulation purposes, and trivially
    splittable into independent streams. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Use one split per simulated entity to decouple their randomness. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)

val exponential : t -> float -> float
(** [exponential t mean] samples Exp with the given mean. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Box-Muller normal sample. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** [lognormal t ~mu ~sigma] where [mu]/[sigma] are the parameters of the
    underlying normal (i.e. the median is [exp mu]). *)

val pareto : t -> scale:float -> shape:float -> float
(** Heavy-tailed sample, minimum [scale]. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
