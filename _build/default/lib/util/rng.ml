type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

(* SplitMix64 output function (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = int64 t in
  { state = mix s }

let int t bound =
  assert (bound > 0);
  (* keep 62 bits so Int64.to_int never lands in the sign bit *)
  let x = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  x mod bound

(* 53 random bits mapped into [0, 1). *)
let unit_float t =
  let bits = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bits *. (1.0 /. 9007199254740992.0)

let float t bound = unit_float t *. bound
let bool t = Int64.logand (int64 t) 1L = 1L
let bernoulli t p = unit_float t < p
let uniform t lo hi = lo +. (unit_float t *. (hi -. lo))

let exponential t mean =
  let u = 1.0 -. unit_float t in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let u1 = 1.0 -. unit_float t and u2 = unit_float t in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (gaussian t ~mu ~sigma)

let pareto t ~scale ~shape =
  let u = 1.0 -. unit_float t in
  scale /. (u ** (1.0 /. shape))

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
