(** Binned time series used to report figure data (rates over time, fps
    curves, concurrency curves). Time is in integer nanoseconds to match
    the simulator clock. *)

type t

val create : bin_ns:int -> t
(** [create ~bin_ns] accumulates values into fixed-width bins. *)

val add : t -> int -> float -> unit
(** [add t time value] accumulates [value] into the bin containing [time].
    Times may arrive out of order. *)

val incr : t -> int -> unit
(** [incr t time] is [add t time 1.0] — convenient for counting events. *)

val bin_ns : t -> int

val bins : t -> (int * float) array
(** [(bin_start_time, sum)] for every bin from the first to the last
    non-empty bin, with empty bins reported as [0.]. Sorted by time. *)

val rates_per_second : t -> (float * float) array
(** [(bin_start_seconds, sum / bin_seconds)] — e.g. bytes become bytes/s. *)

val fold : t -> init:'a -> f:('a -> int -> float -> 'a) -> 'a
