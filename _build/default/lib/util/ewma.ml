type t = { alpha : float; mutable avg : float option; mutable count : int }

let create ~alpha =
  if not (alpha > 0.0 && alpha <= 1.0) then
    invalid_arg "Ewma.create: alpha must be in (0, 1]";
  { alpha; avg = None; count = 0 }

let observe t x =
  t.count <- t.count + 1;
  match t.avg with
  | None -> t.avg <- Some x
  | Some avg -> t.avg <- Some (((1.0 -. t.alpha) *. avg) +. (t.alpha *. x))

let value t =
  match t.avg with
  | Some v -> v
  | None -> invalid_arg "Ewma.value: no observations"

let value_opt t = t.avg
let count t = t.count

let reset t =
  t.avg <- None;
  t.count <- 0
