lib/util/timeseries.ml: Array Hashtbl Option
