lib/util/addr.ml: Format Map Printf Set String
