lib/util/table.mli:
