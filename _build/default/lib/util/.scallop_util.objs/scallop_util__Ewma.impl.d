lib/util/ewma.ml:
