lib/util/timeseries.mli:
