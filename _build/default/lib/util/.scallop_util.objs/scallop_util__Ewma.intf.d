lib/util/ewma.mli:
