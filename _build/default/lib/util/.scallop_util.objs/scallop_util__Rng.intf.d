lib/util/rng.mli:
