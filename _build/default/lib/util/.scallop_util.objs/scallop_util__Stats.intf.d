lib/util/stats.mli:
