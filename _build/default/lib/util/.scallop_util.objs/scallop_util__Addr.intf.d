lib/util/addr.mli: Format Map Set
