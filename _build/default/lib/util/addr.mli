(** IPv4 transport addresses (ip, udp port) shared by the simulator, the
    protocol stack and the switch model. *)

type t = { ip : int; port : int }

val v : int -> int -> t
(** [v ip port]. *)

val ip_of_string : string -> int
(** Dotted quad to 32-bit int. @raise Invalid_argument on bad input. *)

val ip_to_string : int -> string
val of_string : string -> t
(** Parses ["a.b.c.d:port"]. *)

val to_string : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
