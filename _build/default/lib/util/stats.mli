(** Streaming and batch summary statistics used by every experiment. *)

(** Welford online mean/variance accumulator. *)
module Online : sig
  type t

  val create : unit -> t
  val observe : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
end

(** Reservoir of all samples, for exact quantiles on experiment-sized data. *)
module Samples : sig
  type t

  val create : unit -> t
  val observe : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val percentile : t -> float -> float
  (** [percentile t p] for [p] in [\[0, 100\]], linear interpolation.
      @raise Invalid_argument if empty. *)

  val median : t -> float
  val min : t -> float
  val max : t -> float
  val to_array : t -> float array
  (** Sorted copy of the samples. *)

  val cdf : t -> points:int -> (float * float) list
  (** [(value, cumulative fraction)] at [points] evenly spaced fractions —
      the series a CDF plot needs. *)
end

val percentile_of_array : float array -> float -> float
(** [percentile_of_array sorted p]: [sorted] must be sorted ascending. *)
