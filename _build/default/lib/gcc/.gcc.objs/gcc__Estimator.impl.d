lib/gcc/estimator.ml: Float List
