lib/gcc/estimator.mli:
