(** Receiver-side Google Congestion Control (paper §5.2; Carlucci et al.).

    The receiver estimates available bandwidth from packet arrival-time
    variation and reports it to the sender in periodic REMB messages. The
    pipeline is the classic GCC one:

    + packets are grouped by RTP timestamp (one group per video frame);
    + an arrival-time filter computes the inter-group one-way delay
      gradient;
    + a trendline estimator regresses the accumulated gradient and an
      adaptive-threshold detector classifies the path as underused /
      normal / overused;
    + an AIMD controller raises the estimate multiplicatively while the
      path is normal and cuts it to 0.85x the measured receive rate on
      overuse.

    Scallop keeps this logic at the *receiving clients* so the SFU only
    handles low-rate REMB feedback (the receiver-driven mode the paper
    selects over per-packet TWCC). *)

type t

type detector_state = Underuse | Normal | Overuse
type rate_state = Increase | Hold | Decrease

val create :
  ?initial_bps:int -> ?min_bps:int -> ?max_bps:int -> unit -> t
(** Defaults: initial 300 kb/s, min 50 kb/s, max 20 Mb/s. *)

val on_packet : t -> time_ns:int -> rtp_ts:int -> size:int -> unit
(** Feed every received media packet; [rtp_ts] in 90 kHz ticks. *)

val estimate_bps : t -> int
val detector_state : t -> detector_state
val rate_state : t -> rate_state

val receive_rate_bps : t -> time_ns:int -> float
(** Incoming rate measured over the last 500 ms. *)

val poll_remb : t -> time_ns:int -> int option
(** Returns the estimate when a REMB should be emitted now: every 440 ms
    (calibrated to the paper's Table 1 REMB cadence),
    or immediately after the estimate dropped by more than 3%. *)
