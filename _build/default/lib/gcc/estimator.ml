type detector_state = Underuse | Normal | Overuse
type rate_state = Increase | Hold | Decrease

(* One inter-group delay-gradient sample. *)
type sample = { at_ms : float; accumulated_delay_ms : float }

type t = {
  min_bps : int;
  max_bps : int;
  mutable estimate_bps : int;
  (* grouping: packets sharing an RTP timestamp form a group (a frame) *)
  mutable group_ts : int;  (** RTP timestamp of the current group *)
  mutable group_first_arrival : int;
  mutable group_last_arrival : int;
  mutable prev_group_ts : int;
  mutable prev_group_arrival : int;
  mutable have_prev_group : bool;
  mutable started : bool;
  (* trendline *)
  mutable samples : sample list;  (** newest first, bounded *)
  mutable accumulated_delay_ms : float;
  mutable first_arrival_ms : float;
  (* adaptive threshold detector *)
  mutable threshold_ms : float;
  mutable overuse_since : float;  (** ms timestamp when trend first exceeded *)
  mutable detector : detector_state;
  mutable last_update_ms : float;
  (* AIMD *)
  mutable rate : rate_state;
  mutable last_increase_ms : float;
  (* receive-rate window: (time_ns, size) newest first *)
  mutable window : (int * int) list;
  (* REMB scheduling *)
  mutable last_remb_ms : float;
  mutable last_remb_value : int;
}

let trend_window = 20
let ticks_per_ms = 90.0

(* Browsers start the remote estimate near the expected media rate rather
   than probing up from zero; a low start would make the SFU drop layers
   immediately, and with layers dropped the receive-rate cap would pin the
   estimate below the full stream forever (the classic SFU/REMB spiral). *)
let create ?(initial_bps = 3_000_000) ?(min_bps = 50_000) ?(max_bps = 20_000_000) () =
  {
    min_bps;
    max_bps;
    estimate_bps = initial_bps;
    group_ts = 0;
    group_first_arrival = 0;
    group_last_arrival = 0;
    prev_group_ts = 0;
    prev_group_arrival = 0;
    have_prev_group = false;
    started = false;
    samples = [];
    accumulated_delay_ms = 0.0;
    first_arrival_ms = 0.0;
    threshold_ms = 12.5;
    overuse_since = 0.0;
    detector = Normal;
    last_update_ms = 0.0;
    rate = Increase;
    last_increase_ms = 0.0;
    window = [];
    last_remb_ms = neg_infinity;
    last_remb_value = initial_bps;
  }

(* --- receive-rate measurement ------------------------------------------- *)

let rate_window_ns = 500_000_000

let push_window t ~time_ns ~size =
  t.window <- (time_ns, size) :: t.window;
  let cutoff = time_ns - rate_window_ns in
  t.window <- List.filter (fun (ts, _) -> ts >= cutoff) t.window

let receive_rate_bps t ~time_ns =
  let cutoff = time_ns - rate_window_ns in
  let bytes =
    List.fold_left (fun acc (ts, size) -> if ts >= cutoff then acc + size else acc) 0 t.window
  in
  float_of_int (bytes * 8) /. (float_of_int rate_window_ns /. 1e9)

(* --- trendline slope ------------------------------------------------------

   Least-squares slope of accumulated delay vs time over the sample window,
   matching libwebrtc's TrendlineEstimator. *)
let trend_slope samples =
  let n = List.length samples in
  if n < 7 then 0.0
  else begin
    let xs = List.map (fun (s : sample) -> s.at_ms) samples in
    let ys = List.map (fun (s : sample) -> s.accumulated_delay_ms) samples in
    let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int n in
    let mx = mean xs and my = mean ys in
    let num =
      List.fold_left2 (fun acc x y -> acc +. ((x -. mx) *. (y -. my))) 0.0 xs ys
    in
    let den = List.fold_left (fun acc x -> acc +. ((x -. mx) ** 2.0)) 0.0 xs in
    if den = 0.0 then 0.0 else num /. den
  end

(* --- adaptive threshold (libwebrtc k_up/k_down) -------------------------- *)

let k_up = 0.0087
let k_down = 0.039

let update_threshold t ~modified_trend ~now_ms =
  let abs_trend = Float.abs modified_trend in
  if abs_trend <= t.threshold_ms +. 15.0 then begin
    let k = if abs_trend < t.threshold_ms then k_down else k_up in
    let dt = Float.min (now_ms -. t.last_update_ms) 100.0 in
    t.threshold_ms <- t.threshold_ms +. (k *. (abs_trend -. t.threshold_ms) *. dt);
    t.threshold_ms <- Float.max 6.0 (Float.min 600.0 t.threshold_ms)
  end;
  t.last_update_ms <- now_ms

let overuse_time_threshold_ms = 10.0

let detect t ~trend ~now_ms ~group_delta_ms =
  (* scale trend the way libwebrtc does: by number of deltas and a gain *)
  let modified = trend *. Float.min (float_of_int (List.length t.samples)) 60.0 *. 4.0 in
  let state =
    if modified > t.threshold_ms then begin
      if t.overuse_since = 0.0 then t.overuse_since <- now_ms -. group_delta_ms;
      if now_ms -. t.overuse_since >= overuse_time_threshold_ms then Overuse
      else t.detector
    end
    else if modified < -.t.threshold_ms then begin
      t.overuse_since <- 0.0;
      Underuse
    end
    else begin
      t.overuse_since <- 0.0;
      Normal
    end
  in
  update_threshold t ~modified_trend:modified ~now_ms;
  t.detector <- state

(* --- AIMD ----------------------------------------------------------------- *)

let aimd t ~time_ns =
  let now_ms = float_of_int time_ns /. 1e6 in
  let incoming = receive_rate_bps t ~time_ns in
  (match t.detector with
  | Overuse ->
      if t.rate <> Decrease then begin
        t.rate <- Decrease;
        let cut = int_of_float (0.85 *. incoming) in
        if cut > 0 && cut < t.estimate_bps then t.estimate_bps <- cut
      end
  | Underuse -> t.rate <- Hold
  | Normal -> (
      match t.rate with
      | Decrease | Hold ->
          t.rate <- Increase;
          t.last_increase_ms <- now_ms
      | Increase ->
          let dt_s = Float.max 0.0 ((now_ms -. t.last_increase_ms) /. 1000.0) in
          if dt_s > 0.0 then begin
            (* multiplicative increase, 8%/s; the measured-rate cap bounds
               growth but never pulls an existing estimate down (decreases
               are the overuse detector's job) *)
            let factor = 1.08 ** Float.min dt_s 1.0 in
            let grown = float_of_int t.estimate_bps *. factor in
            let cap =
              if incoming > 0.0 then (1.5 *. incoming) +. 10_000.0 else grown
            in
            let next = Float.max (float_of_int t.estimate_bps) (Float.min grown cap) in
            t.estimate_bps <- int_of_float next;
            t.last_increase_ms <- now_ms
          end));
  t.estimate_bps <- max t.min_bps (min t.max_bps t.estimate_bps)

(* --- group accounting ------------------------------------------------------ *)

(* Inter-group deltas use the *first* arrival of each group: frames are
   paced onto the wire, so last-packet times vary with frame size even on
   an idle path, while first-packet times track queueing delay only. *)
let complete_group t ~time_ns =
  if t.have_prev_group then begin
    let arrival_delta_ms =
      float_of_int (t.group_first_arrival - t.prev_group_arrival) /. 1e6
    in
    let departure_delta_ms =
      float_of_int (t.group_ts - t.prev_group_ts) /. ticks_per_ms
    in
    let gradient = arrival_delta_ms -. departure_delta_ms in
    let now_ms = float_of_int time_ns /. 1e6 in
    if t.samples = [] then t.first_arrival_ms <- now_ms;
    t.accumulated_delay_ms <- t.accumulated_delay_ms +. gradient;
    let sample =
      { at_ms = now_ms -. t.first_arrival_ms; accumulated_delay_ms = t.accumulated_delay_ms }
    in
    t.samples <- sample :: t.samples;
    if List.length t.samples > trend_window then
      t.samples <- List.filteri (fun i _ -> i < trend_window) t.samples;
    let trend = trend_slope (List.rev t.samples) in
    detect t ~trend ~now_ms ~group_delta_ms:arrival_delta_ms;
    aimd t ~time_ns
  end;
  t.prev_group_ts <- t.group_ts;
  t.prev_group_arrival <- t.group_first_arrival;
  t.have_prev_group <- true

let on_packet t ~time_ns ~rtp_ts ~size =
  push_window t ~time_ns ~size;
  if not t.started then begin
    t.started <- true;
    t.group_ts <- rtp_ts;
    t.group_first_arrival <- time_ns;
    t.group_last_arrival <- time_ns
  end
  else if rtp_ts = t.group_ts then t.group_last_arrival <- time_ns
  else if rtp_ts < t.group_ts then
    (* a retransmission or reordered packet of an older frame: it still
       counts toward the receive rate, but would corrupt the inter-group
       delay filter (libwebrtc likewise discards old groups) *)
    ()
  else begin
    complete_group t ~time_ns;
    t.group_ts <- rtp_ts;
    t.group_first_arrival <- time_ns;
    t.group_last_arrival <- time_ns
  end

let estimate_bps t = t.estimate_bps
let detector_state t = t.detector
let rate_state t = t.rate

let remb_interval_ms = 440.0

let poll_remb t ~time_ns =
  let now_ms = float_of_int time_ns /. 1e6 in
  let dropped_sharply =
    float_of_int t.estimate_bps < 0.97 *. float_of_int t.last_remb_value
  in
  if now_ms -. t.last_remb_ms >= remb_interval_ms || dropped_sharply then begin
    t.last_remb_ms <- now_ms;
    t.last_remb_value <- t.estimate_bps;
    Some t.estimate_bps
  end
  else None
