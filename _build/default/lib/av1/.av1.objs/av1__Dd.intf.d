lib/av1/dd.mli: Format
