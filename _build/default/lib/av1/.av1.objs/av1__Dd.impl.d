lib/av1/dd.ml: Array Format Printf Rtp
