module Addr = Scallop_util.Addr

type media_kind = Audio | Video | Screen
type direction = Sendrecv | Sendonly | Recvonly | Inactive

type candidate = {
  foundation : string;
  component : int;
  priority : int;
  addr : Addr.t;
  typ : string;
}

type media = {
  kind : media_kind;
  mid : string;
  payload_type : int;
  codec : string;
  clock_rate : int;
  ssrc : int;
  cname : string;
  direction : direction;
  candidates : candidate list;
  extmaps : (int * string) list;
  svc_mode : string option;
}

type t = {
  session_id : int;
  origin_addr : Addr.t;
  ice_ufrag : string;
  ice_pwd : string;
  medias : media list;
}

let host_candidate addr = { foundation = "1"; component = 1; priority = 2130706431; addr; typ = "host" }

let make_media ?(direction = Sendrecv) ?(extmaps = []) ?(svc_mode = None) ~kind ~mid
    ~payload_type ~codec ~clock_rate ~ssrc ~cname ~candidates () =
  { kind; mid; payload_type; codec; clock_rate; ssrc; cname; direction; candidates; extmaps; svc_mode }

let media_kind_to_string = function Audio -> "audio" | Video -> "video" | Screen -> "screen"

let media_kind_of_string = function
  | "audio" -> Audio
  | "video" -> Video
  | "screen" -> Screen
  | s -> failwith ("Sdp: unknown media kind " ^ s)

let direction_to_string = function
  | Sendrecv -> "sendrecv"
  | Sendonly -> "sendonly"
  | Recvonly -> "recvonly"
  | Inactive -> "inactive"

let direction_of_string = function
  | "sendrecv" -> Some Sendrecv
  | "sendonly" -> Some Sendonly
  | "recvonly" -> Some Recvonly
  | "inactive" -> Some Inactive
  | _ -> None

let to_string t =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "v=0";
  line "o=- %d 2 IN IP4 %s" t.session_id (Addr.ip_to_string t.origin_addr.ip);
  line "s=-";
  line "t=0 0";
  line "a=ice-ufrag:%s" t.ice_ufrag;
  line "a=ice-pwd:%s" t.ice_pwd;
  List.iter
    (fun m ->
      let port = match m.candidates with c :: _ -> c.addr.port | [] -> 9 in
      line "m=%s %d UDP/RTP %d" (media_kind_to_string m.kind) port m.payload_type;
      line "c=IN IP4 %s" (Addr.ip_to_string t.origin_addr.ip);
      line "a=mid:%s" m.mid;
      line "a=rtpmap:%d %s/%d" m.payload_type m.codec m.clock_rate;
      line "a=ssrc:%d cname:%s" m.ssrc m.cname;
      line "a=%s" (direction_to_string m.direction);
      List.iter (fun (id, uri) -> line "a=extmap:%d %s" id uri) m.extmaps;
      (match m.svc_mode with None -> () | Some s -> line "a=svc:%s" s);
      List.iter
        (fun c ->
          line "a=candidate:%s %d udp %d %s %d typ %s" c.foundation c.component c.priority
            (Addr.ip_to_string c.addr.ip) c.addr.port c.typ)
        m.candidates)
    t.medias;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------ *)

type parse_state = {
  mutable session_id : int;
  mutable origin_ip : int;
  mutable ice_ufrag : string;
  mutable ice_pwd : string;
  mutable medias_rev : media list;
  mutable current : media option;
}

let fail_line line what = failwith (Printf.sprintf "Sdp.of_string: %s in %S" what line)

let split_ws s = String.split_on_char ' ' s |> List.filter (fun x -> x <> "")

let parse_candidate line rest =
  match split_ws rest with
  | [ foundation; component; "udp"; priority; ip; port; "typ"; typ ] ->
      {
        foundation;
        component = int_of_string component;
        priority = int_of_string priority;
        addr = Addr.v (Addr.ip_of_string ip) (int_of_string port);
        typ;
      }
  | _ -> fail_line line "bad candidate"

let finish_current st =
  match st.current with
  | None -> ()
  | Some m ->
      st.medias_rev <-
        { m with candidates = List.rev m.candidates; extmaps = List.rev m.extmaps }
        :: st.medias_rev;
      st.current <- None

let update_current st line f =
  match st.current with
  | None -> fail_line line "attribute outside media section"
  | Some m -> st.current <- Some (f m)

let parse_attribute st line rest =
  match String.index_opt rest ':' with
  | None -> (
      match direction_of_string rest with
      | Some d -> update_current st line (fun m -> { m with direction = d })
      | None -> () (* unknown flag attribute: ignore *))
  | Some i -> (
      let key = String.sub rest 0 i in
      let value = String.sub rest (i + 1) (String.length rest - i - 1) in
      match key with
      | "ice-ufrag" -> st.ice_ufrag <- value
      | "ice-pwd" -> st.ice_pwd <- value
      | "mid" -> update_current st line (fun m -> { m with mid = value })
      | "rtpmap" -> (
          match split_ws value with
          | [ pt; codec_clock ] -> (
              match String.split_on_char '/' codec_clock with
              | [ codec; clock ] ->
                  update_current st line (fun m ->
                      {
                        m with
                        payload_type = int_of_string pt;
                        codec;
                        clock_rate = int_of_string clock;
                      })
              | _ -> fail_line line "bad rtpmap")
          | _ -> fail_line line "bad rtpmap")
      | "ssrc" -> (
          match split_ws value with
          | [ ssrc; cname_kv ] -> (
              match String.split_on_char ':' cname_kv with
              | [ "cname"; cname ] ->
                  update_current st line (fun m ->
                      { m with ssrc = int_of_string ssrc; cname })
              | _ -> fail_line line "bad ssrc line")
          | _ -> fail_line line "bad ssrc line")
      | "extmap" -> (
          match split_ws value with
          | [ id; uri ] ->
              update_current st line (fun m ->
                  { m with extmaps = (int_of_string id, uri) :: m.extmaps })
          | _ -> fail_line line "bad extmap")
      | "svc" -> update_current st line (fun m -> { m with svc_mode = Some value })
      | "candidate" ->
          let c = parse_candidate line value in
          update_current st line (fun m -> { m with candidates = c :: m.candidates })
      | _ -> () (* unknown attribute: ignore, as real stacks do *))

let of_string text =
  let st =
    {
      session_id = 0;
      origin_ip = 0;
      ice_ufrag = "";
      ice_pwd = "";
      medias_rev = [];
      current = None;
    }
  in
  let handle line =
    if String.length line < 2 || String.get line 1 <> '=' then fail_line line "bad SDP line"
    else begin
      let rest = String.sub line 2 (String.length line - 2) in
      match String.get line 0 with
      | 'v' | 's' | 't' | 'c' -> ()
      | 'o' -> (
          match split_ws rest with
          | [ _; sess; _; "IN"; "IP4"; ip ] ->
              st.session_id <- int_of_string sess;
              st.origin_ip <- Addr.ip_of_string ip
          | _ -> fail_line line "bad origin")
      | 'm' -> (
          finish_current st;
          match split_ws rest with
          | [ kind; _port; "UDP/RTP"; pt ] ->
              st.current <-
                Some
                  {
                    kind = media_kind_of_string kind;
                    mid = "";
                    payload_type = int_of_string pt;
                    codec = "";
                    clock_rate = 0;
                    ssrc = 0;
                    cname = "";
                    direction = Sendrecv;
                    candidates = [];
                    extmaps = [];
                    svc_mode = None;
                  }
          | _ -> fail_line line "bad media line")
      | 'a' -> parse_attribute st line rest
      | _ -> ()
    end
  in
  String.split_on_char '\n' text
  |> List.map String.trim
  |> List.filter (fun l -> l <> "")
  |> List.iter handle;
  finish_current st;
  {
    session_id = st.session_id;
    origin_addr = Addr.v st.origin_ip 0;
    ice_ufrag = st.ice_ufrag;
    ice_pwd = st.ice_pwd;
    medias = List.rev st.medias_rev;
  }

let rewrite_candidates t sfu_addr =
  {
    t with
    medias = List.map (fun m -> { m with candidates = [ host_candidate sfu_addr ] }) t.medias;
  }

let mirror = function
  | Sendrecv -> Sendrecv
  | Sendonly -> Recvonly
  | Recvonly -> Sendonly
  | Inactive -> Inactive

let answer ~offer ~session_id ~origin ~ice_ufrag ~ice_pwd ~media_for =
  let medias =
    List.map
      (fun (offered : media) ->
        match media_for offered with
        | None -> { offered with direction = Inactive; candidates = [] }
        | Some m ->
            if m.payload_type <> offered.payload_type || m.codec <> offered.codec then
              failwith "Sdp.answer: codec/payload type must match the offer";
            { m with kind = offered.kind; mid = offered.mid; direction = mirror offered.direction })
      offer.medias
  in
  { session_id; origin_addr = origin; ice_ufrag; ice_pwd; medias }

let equal a b = a = b
