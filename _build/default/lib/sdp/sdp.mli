(** Session Description Protocol (offer/answer, RFC 3264/8866 subset) plus
    ICE candidate lines.

    Scallop's controller acts as the signaling server: it intercepts SDP
    messages and rewrites the connection candidates so that the SFU appears
    to each participant as its sole peer (paper §5.1). This module provides
    the wire text format and the candidate-rewriting primitive that makes
    that splice possible. *)

type media_kind = Audio | Video | Screen

type direction = Sendrecv | Sendonly | Recvonly | Inactive

type candidate = {
  foundation : string;
  component : int;  (** 1 = RTP (RTCP is muxed). *)
  priority : int;
  addr : Scallop_util.Addr.t;
  typ : string;  (** "host", "srflx", "relay". *)
}

type media = {
  kind : media_kind;
  mid : string;
  payload_type : int;
  codec : string;  (** e.g. "AV1", "opus". *)
  clock_rate : int;
  ssrc : int;
  cname : string;
  direction : direction;
  candidates : candidate list;
  extmaps : (int * string) list;  (** RTP header-extension id → URI. *)
  svc_mode : string option;  (** e.g. ["L1T3"]. *)
}

type t = {
  session_id : int;
  origin_addr : Scallop_util.Addr.t;
  ice_ufrag : string;
  ice_pwd : string;
  medias : media list;
}

val host_candidate : Scallop_util.Addr.t -> candidate

val make_media :
  ?direction:direction ->
  ?extmaps:(int * string) list ->
  ?svc_mode:string option ->
  kind:media_kind ->
  mid:string ->
  payload_type:int ->
  codec:string ->
  clock_rate:int ->
  ssrc:int ->
  cname:string ->
  candidates:candidate list ->
  unit ->
  media

val to_string : t -> string
val of_string : string -> t
(** @raise Failure with a diagnostic on malformed SDP. *)

val rewrite_candidates : t -> Scallop_util.Addr.t -> t
(** [rewrite_candidates sdp sfu_addr] replaces every media section's
    candidate list with a single host candidate at [sfu_addr] — the
    controller's splice that inserts the SFU while preserving the P2P
    illusion. *)

val answer : offer:t -> session_id:int -> origin:Scallop_util.Addr.t ->
  ice_ufrag:string -> ice_pwd:string ->
  media_for:(media -> media option) -> t
(** Builds an answer by mapping each offered media section through
    [media_for] (returning [None] rejects the section, which flips its
    direction to [Inactive]). Codec and payload type must match the offer;
    directions are mirrored. *)

val media_kind_to_string : media_kind -> string
val equal : t -> t -> bool
