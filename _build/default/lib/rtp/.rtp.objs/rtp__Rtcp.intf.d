lib/rtp/rtcp.mli: Format
