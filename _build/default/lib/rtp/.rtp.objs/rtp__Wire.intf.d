lib/rtp/wire.mli:
