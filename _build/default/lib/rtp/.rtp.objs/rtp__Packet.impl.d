lib/rtp/packet.ml: Bytes Char Format List Wire
