lib/rtp/rtcp.ml: Bytes Format List String Wire
