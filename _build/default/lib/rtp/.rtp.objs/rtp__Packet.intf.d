lib/rtp/packet.mli: Format
