lib/rtp/demux.ml: Bytes Char Format Stun
