lib/rtp/stun.mli: Format
