lib/rtp/wire.ml: Buffer Bytes Char Int32 Printf
