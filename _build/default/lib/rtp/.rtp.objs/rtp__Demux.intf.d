lib/rtp/demux.mli: Format
