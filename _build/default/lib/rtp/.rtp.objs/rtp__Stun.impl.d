lib/rtp/stun.ml: Bytes Char Format Fun Int64 List Option Wire
