(** UDP-payload classification, mirroring the Scallop parser's lookahead
    (paper Appendix E): the data plane peeks at the first bits of the UDP
    payload to decide whether a packet is RTP media, RTCP feedback, or
    STUN, without committing to a full software parse. *)

type kind = Rtp_media | Rtcp_feedback | Stun_packet | Unknown

val classify : bytes -> kind
(** RTP and RTCP share version bits [10]; they are separated by the RTCP
    packet-type range 192–223 in the second byte (RFC 5761). STUN starts
    with two zero bits and carries the magic cookie. *)

val rtcp_packet_type : bytes -> int option
(** Packet type of the first RTCP packet in a compound payload, without a
    full parse — what the data plane matches on to pick CPU-port copies. *)

val pp_kind : Format.formatter -> kind -> unit
