(** RTCP packets (RFC 3550) plus the feedback formats Scallop handles:
    NACK (RFC 4585 RTPFB), PLI (RFC 4585 PSFB) and REMB
    (draft-alvestrand-rmcat-remb, carried as PSFB/ALFB).

    RTCP packets travel in compound packets; {!serialize_compound} and
    {!parse_compound} operate on whole UDP payloads.  The Scallop data
    plane never parses past the common header — it only needs the packet
    type to decide forwarding vs. CPU-port copies (paper §5.5). *)

type report_block = {
  ssrc : int;  (** Stream this block reports on. *)
  fraction_lost : int;  (** 8-bit fixed point, /256. *)
  cumulative_lost : int;  (** 24-bit signed. *)
  highest_seq : int;  (** Extended highest sequence number received. *)
  jitter : int;  (** Interarrival jitter in timestamp units. *)
  last_sr : int;  (** Last SR timestamp (LSR). *)
  dlsr : int;  (** Delay since last SR, 1/65536 s. *)
}

type sender_info = {
  ntp_sec : int;
  ntp_frac : int;
  rtp_ts : int;
  packet_count : int;
  octet_count : int;
}

type sdes_item = Cname of string

type t =
  | Sender_report of { ssrc : int; info : sender_info; reports : report_block list }
  | Receiver_report of { ssrc : int; reports : report_block list }
  | Sdes of (int * sdes_item list) list
  | Bye of { ssrcs : int list; reason : string option }
  | Nack of { sender_ssrc : int; media_ssrc : int; lost : int list }
      (** [lost] is the explicit list of missing sequence numbers; the codec
          packs/unpacks the PID+BLP wire representation. *)
  | Pli of { sender_ssrc : int; media_ssrc : int }
  | Remb of { sender_ssrc : int; bitrate_bps : int; ssrcs : int list }
  | Twcc of {
      sender_ssrc : int;
      media_ssrc : int;
      base_seq : int;
      fb_count : int;  (** feedback packet counter, wraps at 256 *)
      deltas : int list;
          (** per-packet receive-time deltas in 250 µs ticks, one per media
              packet covered (sender-driven congestion control feedback,
              RFC 8888-style; the paper rejects this mode because one such
              packet is needed every 10–20 media packets, §5.2) *)
    }

val serialize : t -> bytes
val parse : bytes -> t
val serialize_compound : t list -> bytes
val parse_compound : bytes -> t list

val packet_type : t -> int
(** Wire packet type: 200 SR, 201 RR, 202 SDES, 203 BYE, 205 RTPFB,
    206 PSFB. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
