type kind = Rtp_media | Rtcp_feedback | Stun_packet | Unknown

let classify buf =
  if Bytes.length buf < 2 then Unknown
  else begin
    let b0 = Char.code (Bytes.get buf 0) in
    let b1 = Char.code (Bytes.get buf 1) in
    if b0 lsr 6 = 2 then
      (* RFC 5761 demultiplexing: RTCP packet types occupy 192..223, which
         appear in the second byte where RTP would carry M|PT. *)
      if b1 >= 192 && b1 <= 223 then Rtcp_feedback else Rtp_media
    else if Stun.is_stun buf then Stun_packet
    else Unknown
  end

let rtcp_packet_type buf =
  match classify buf with
  | Rtcp_feedback -> Some (Char.code (Bytes.get buf 1))
  | Rtp_media | Stun_packet | Unknown -> None

let pp_kind fmt = function
  | Rtp_media -> Format.pp_print_string fmt "RTP"
  | Rtcp_feedback -> Format.pp_print_string fmt "RTCP"
  | Stun_packet -> Format.pp_print_string fmt "STUN"
  | Unknown -> Format.pp_print_string fmt "UNKNOWN"
