type attribute =
  | Username of string
  | Priority of int
  | Ice_controlling of int64
  | Ice_controlled of int64
  | Use_candidate
  | Xor_mapped_address of { ip : int; port : int }
  | Unknown of int * bytes

type message_class = Request | Success_response | Error_response | Indication

type t = {
  cls : message_class;
  method_ : int;
  transaction_id : bytes;
  attributes : attribute list;
}

let magic_cookie = 0x2112A442

let binding_request ?username ?priority ~transaction_id () =
  let attributes =
    List.filter_map Fun.id
      [
        Option.map (fun u -> Username u) username;
        Option.map (fun p -> Priority p) priority;
      ]
  in
  { cls = Request; method_ = 0x001; transaction_id; attributes }

let binding_success ~transaction_id ~mapped_ip ~mapped_port =
  {
    cls = Success_response;
    method_ = 0x001;
    transaction_id;
    attributes = [ Xor_mapped_address { ip = mapped_ip; port = mapped_port } ];
  }

(* Message type encodes class bits at positions 4 and 8 interleaved with the
   method (RFC 5389 §6). *)
let encode_type cls method_ =
  let c =
    match cls with Request -> 0 | Indication -> 1 | Success_response -> 2 | Error_response -> 3
  in
  let m = method_ in
  ((m land 0xF80) lsl 2)
  lor ((c land 0x2) lsl 7)
  lor ((m land 0x70) lsl 1)
  lor ((c land 0x1) lsl 4)
  lor (m land 0xF)

let decode_type ty =
  let c = ((ty lsr 7) land 0x2) lor ((ty lsr 4) land 0x1) in
  let m = ((ty lsr 2) land 0xF80) lor ((ty lsr 1) land 0x70) lor (ty land 0xF) in
  let cls =
    match c with
    | 0 -> Request
    | 1 -> Indication
    | 2 -> Success_response
    | _ -> Error_response
  in
  (cls, m)

let attr_username = 0x0006
let attr_priority = 0x0024
let attr_use_candidate = 0x0025
let attr_xor_mapped = 0x0020
let attr_ice_controlled = 0x8029
let attr_ice_controlling = 0x802A

let write_attr w attr =
  let body = Wire.Writer.create () in
  let ty =
    match attr with
    | Username u ->
        Wire.Writer.bytes body (Bytes.of_string u);
        attr_username
    | Priority p ->
        Wire.Writer.u32_int body p;
        attr_priority
    | Use_candidate -> attr_use_candidate
    | Ice_controlling v ->
        Wire.Writer.u32_int body (Int64.to_int (Int64.shift_right_logical v 32));
        Wire.Writer.u32_int body (Int64.to_int (Int64.logand v 0xFFFFFFFFL));
        attr_ice_controlling
    | Ice_controlled v ->
        Wire.Writer.u32_int body (Int64.to_int (Int64.shift_right_logical v 32));
        Wire.Writer.u32_int body (Int64.to_int (Int64.logand v 0xFFFFFFFFL));
        attr_ice_controlled
    | Xor_mapped_address { ip; port } ->
        Wire.Writer.u8 body 0;
        Wire.Writer.u8 body 0x01;
        Wire.Writer.u16 body (port lxor (magic_cookie lsr 16));
        Wire.Writer.u32_int body (ip lxor magic_cookie);
        attr_xor_mapped
    | Unknown (ty, data) ->
        Wire.Writer.bytes body data;
        ty
  in
  let data = Wire.Writer.contents body in
  Wire.Writer.u16 w ty;
  Wire.Writer.u16 w (Bytes.length data);
  Wire.Writer.bytes w data;
  (* attributes are padded to 32-bit boundaries *)
  let pad = (4 - (Bytes.length data mod 4)) mod 4 in
  for _ = 1 to pad do
    Wire.Writer.u8 w 0
  done

let serialize t =
  if Bytes.length t.transaction_id <> 12 then invalid_arg "Stun: transaction id must be 12 bytes";
  let attrs = Wire.Writer.create () in
  List.iter (write_attr attrs) t.attributes;
  let body = Wire.Writer.contents attrs in
  let w = Wire.Writer.create () in
  Wire.Writer.u16 w (encode_type t.cls t.method_);
  Wire.Writer.u16 w (Bytes.length body);
  Wire.Writer.u32_int w magic_cookie;
  Wire.Writer.bytes w t.transaction_id;
  Wire.Writer.bytes w body;
  Wire.Writer.contents w

let read_attr r =
  let ty = Wire.Reader.u16 r in
  let len = Wire.Reader.u16 r in
  let data = Wire.Reader.take r len in
  let pad = (4 - (len mod 4)) mod 4 in
  if Wire.Reader.remaining r >= pad then Wire.Reader.skip r pad;
  let dr = Wire.Reader.of_bytes data in
  if ty = attr_username then Username (Bytes.to_string data)
  else if ty = attr_priority then Priority (Wire.Reader.u32_int dr)
  else if ty = attr_use_candidate then Use_candidate
  else if ty = attr_ice_controlling then begin
    let hi = Wire.Reader.u32_int dr and lo = Wire.Reader.u32_int dr in
    Ice_controlling Int64.(logor (shift_left (of_int hi) 32) (of_int lo))
  end
  else if ty = attr_ice_controlled then begin
    let hi = Wire.Reader.u32_int dr and lo = Wire.Reader.u32_int dr in
    Ice_controlled Int64.(logor (shift_left (of_int hi) 32) (of_int lo))
  end
  else if ty = attr_xor_mapped then begin
    Wire.Reader.skip dr 1;
    let family = Wire.Reader.u8 dr in
    if family <> 0x01 then Wire.parse_error "STUN: only IPv4 supported";
    let port = Wire.Reader.u16 dr lxor (magic_cookie lsr 16) in
    let ip = Wire.Reader.u32_int dr lxor magic_cookie in
    Xor_mapped_address { ip; port }
  end
  else Unknown (ty, data)

let parse buf =
  let r = Wire.Reader.of_bytes buf in
  let ty = Wire.Reader.u16 r in
  if ty land 0xC000 <> 0 then Wire.parse_error "not a STUN message";
  let len = Wire.Reader.u16 r in
  let cookie = Wire.Reader.u32_int r in
  if cookie <> magic_cookie then Wire.parse_error "bad STUN magic cookie";
  let transaction_id = Wire.Reader.take r 12 in
  let body = Wire.Reader.take r len in
  let br = Wire.Reader.of_bytes body in
  let rec attrs acc = if Wire.Reader.eof br then List.rev acc else attrs (read_attr br :: acc) in
  let cls, method_ = decode_type ty in
  { cls; method_; transaction_id; attributes = attrs [] }

let is_stun buf =
  Bytes.length buf >= 8
  && Char.code (Bytes.get buf 0) land 0xC0 = 0
  && Char.code (Bytes.get buf 4) = 0x21
  && Char.code (Bytes.get buf 5) = 0x12
  && Char.code (Bytes.get buf 6) = 0xA4
  && Char.code (Bytes.get buf 7) = 0x42

let pp fmt t =
  let cls =
    match t.cls with
    | Request -> "req"
    | Success_response -> "ok"
    | Error_response -> "err"
    | Indication -> "ind"
  in
  Format.fprintf fmt "STUN{%s m=%#x attrs=%d}" cls t.method_ (List.length t.attributes)

let equal a b =
  a.cls = b.cls && a.method_ = b.method_
  && Bytes.equal a.transaction_id b.transaction_id
  && a.attributes = b.attributes
