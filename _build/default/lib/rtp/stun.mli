(** STUN (RFC 5389) binding requests/responses — the periodic connectivity
    checks WebRTC runs (paper §5.1). Scallop answers these in the switch
    agent rather than the data plane, so only binding request/success with
    the attributes ICE actually uses are modelled. *)

type attribute =
  | Username of string
  | Priority of int
  | Ice_controlling of int64
  | Ice_controlled of int64
  | Use_candidate
  | Xor_mapped_address of { ip : int; port : int }  (** ip is IPv4 as 32-bit int. *)
  | Unknown of int * bytes

type message_class = Request | Success_response | Error_response | Indication

type t = {
  cls : message_class;
  method_ : int;  (** 0x001 = Binding. *)
  transaction_id : bytes;  (** Exactly 12 bytes. *)
  attributes : attribute list;
}

val magic_cookie : int

val binding_request :
  ?username:string -> ?priority:int -> transaction_id:bytes -> unit -> t

val binding_success :
  transaction_id:bytes -> mapped_ip:int -> mapped_port:int -> t

val serialize : t -> bytes
val parse : bytes -> t

val is_stun : bytes -> bool
(** Cheap check on the first two bits + magic cookie, usable as the data
    plane's lookahead classification. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
