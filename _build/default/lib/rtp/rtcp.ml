type report_block = {
  ssrc : int;
  fraction_lost : int;
  cumulative_lost : int;
  highest_seq : int;
  jitter : int;
  last_sr : int;
  dlsr : int;
}

type sender_info = {
  ntp_sec : int;
  ntp_frac : int;
  rtp_ts : int;
  packet_count : int;
  octet_count : int;
}

type sdes_item = Cname of string

type t =
  | Sender_report of { ssrc : int; info : sender_info; reports : report_block list }
  | Receiver_report of { ssrc : int; reports : report_block list }
  | Sdes of (int * sdes_item list) list
  | Bye of { ssrcs : int list; reason : string option }
  | Nack of { sender_ssrc : int; media_ssrc : int; lost : int list }
  | Pli of { sender_ssrc : int; media_ssrc : int }
  | Remb of { sender_ssrc : int; bitrate_bps : int; ssrcs : int list }
  | Twcc of {
      sender_ssrc : int;
      media_ssrc : int;
      base_seq : int;
      fb_count : int;
      deltas : int list;
    }

let pt_sr = 200
let pt_rr = 201
let pt_sdes = 202
let pt_bye = 203
let pt_rtpfb = 205
let pt_psfb = 206

let packet_type = function
  | Sender_report _ -> pt_sr
  | Receiver_report _ -> pt_rr
  | Sdes _ -> pt_sdes
  | Bye _ -> pt_bye
  | Nack _ | Twcc _ -> pt_rtpfb
  | Pli _ | Remb _ -> pt_psfb

(* --- serialization ------------------------------------------------------ *)

let write_report_block w (b : report_block) =
  Wire.Writer.u32_int w b.ssrc;
  Wire.Writer.u8 w b.fraction_lost;
  Wire.Writer.u24 w b.cumulative_lost;
  Wire.Writer.u32_int w b.highest_seq;
  Wire.Writer.u32_int w b.jitter;
  Wire.Writer.u32_int w b.last_sr;
  Wire.Writer.u32_int w b.dlsr

(* Pack an ascending list of lost sequence numbers into (PID, BLP) pairs:
   each pair covers PID plus the 16 sequence numbers after it. *)
let pack_nack_fci lost =
  let sorted = List.sort_uniq compare lost in
  let rec group acc = function
    | [] -> List.rev acc
    | pid :: rest ->
        let in_window, beyond =
          List.partition (fun s -> s > pid && s - pid <= 16) rest
        in
        let blp =
          List.fold_left (fun m s -> m lor (1 lsl (s - pid - 1))) 0 in_window
        in
        group ((pid, blp) :: acc) beyond
  in
  group [] sorted

let unpack_nack_fci pairs =
  List.concat_map
    (fun (pid, blp) ->
      let tail =
        List.filteri (fun i _ -> blp land (1 lsl i) <> 0) (List.init 16 (fun i -> i))
        |> List.map (fun i -> pid + i + 1)
      in
      pid :: tail)
    pairs

(* REMB mantissa/exponent encoding: bitrate = mantissa * 2^exp, 18-bit
   mantissa. *)
let remb_encode_bitrate bps =
  let rec find exp m = if m < 1 lsl 18 then (exp, m) else find (exp + 1) (m lsr 1) in
  find 0 bps

let header w ~count ~pt ~body =
  let len_bytes = Bytes.length body in
  assert (len_bytes mod 4 = 0);
  Wire.Writer.u8 w ((2 lsl 6) lor (count land 0x1F));
  Wire.Writer.u8 w pt;
  Wire.Writer.u16 w ((len_bytes / 4) + 1 - 1);
  (* length is in 32-bit words minus one, counting the 4-byte header *)
  Wire.Writer.bytes w body

let pad32 w =
  while Wire.Writer.length w mod 4 <> 0 do
    Wire.Writer.u8 w 0
  done

let serialize t =
  let w = Wire.Writer.create () in
  let body = Wire.Writer.create () in
  let count =
    match t with
    | Sender_report { ssrc; info; reports } ->
        Wire.Writer.u32_int body ssrc;
        Wire.Writer.u32_int body info.ntp_sec;
        Wire.Writer.u32_int body info.ntp_frac;
        Wire.Writer.u32_int body info.rtp_ts;
        Wire.Writer.u32_int body info.packet_count;
        Wire.Writer.u32_int body info.octet_count;
        List.iter (write_report_block body) reports;
        List.length reports
    | Receiver_report { ssrc; reports } ->
        Wire.Writer.u32_int body ssrc;
        List.iter (write_report_block body) reports;
        List.length reports
    | Sdes chunks ->
        List.iter
          (fun (ssrc, items) ->
            Wire.Writer.u32_int body ssrc;
            List.iter
              (fun (Cname name) ->
                Wire.Writer.u8 body 1;
                Wire.Writer.u8 body (String.length name);
                Wire.Writer.bytes body (Bytes.of_string name))
              items;
            Wire.Writer.u8 body 0;
            pad32 body)
          chunks;
        List.length chunks
    | Bye { ssrcs; reason } ->
        List.iter (fun s -> Wire.Writer.u32_int body s) ssrcs;
        (match reason with
        | None -> ()
        | Some r ->
            Wire.Writer.u8 body (String.length r);
            Wire.Writer.bytes body (Bytes.of_string r);
            pad32 body);
        List.length ssrcs
    | Nack { sender_ssrc; media_ssrc; lost } ->
        Wire.Writer.u32_int body sender_ssrc;
        Wire.Writer.u32_int body media_ssrc;
        List.iter
          (fun (pid, blp) ->
            Wire.Writer.u16 body pid;
            Wire.Writer.u16 body blp)
          (pack_nack_fci lost);
        1
    | Twcc { sender_ssrc; media_ssrc; base_seq; fb_count; deltas } ->
        Wire.Writer.u32_int body sender_ssrc;
        Wire.Writer.u32_int body media_ssrc;
        Wire.Writer.u16 body base_seq;
        Wire.Writer.u8 body fb_count;
        Wire.Writer.u8 body (List.length deltas);
        List.iter (fun d -> Wire.Writer.u8 body d) deltas;
        pad32 body;
        15
    | Pli { sender_ssrc; media_ssrc } ->
        Wire.Writer.u32_int body sender_ssrc;
        Wire.Writer.u32_int body media_ssrc;
        1
    | Remb { sender_ssrc; bitrate_bps; ssrcs } ->
        Wire.Writer.u32_int body sender_ssrc;
        Wire.Writer.u32_int body 0;
        Wire.Writer.bytes body (Bytes.of_string "REMB");
        let exp, mantissa = remb_encode_bitrate bitrate_bps in
        Wire.Writer.u8 body (List.length ssrcs);
        Wire.Writer.u8 body ((exp lsl 2) lor (mantissa lsr 16));
        Wire.Writer.u16 body (mantissa land 0xFFFF);
        List.iter (fun s -> Wire.Writer.u32_int body s) ssrcs;
        15
  in
  header w ~count ~pt:(packet_type t) ~body:(Wire.Writer.contents body);
  Wire.Writer.contents w

(* --- parsing ------------------------------------------------------------ *)

let read_report_block r : report_block =
  let ssrc = Wire.Reader.u32_int r in
  let fraction_lost = Wire.Reader.u8 r in
  let cumulative_lost = Wire.Reader.u24 r in
  let highest_seq = Wire.Reader.u32_int r in
  let jitter = Wire.Reader.u32_int r in
  let last_sr = Wire.Reader.u32_int r in
  let dlsr = Wire.Reader.u32_int r in
  { ssrc; fraction_lost; cumulative_lost; highest_seq; jitter; last_sr; dlsr }

let parse_one r =
  let b0 = Wire.Reader.u8 r in
  if b0 lsr 6 <> 2 then Wire.parse_error "RTCP version %d" (b0 lsr 6);
  let count = b0 land 0x1F in
  let pt = Wire.Reader.u8 r in
  let words = Wire.Reader.u16 r in
  let body = Wire.Reader.take r (words * 4) in
  let r = Wire.Reader.of_bytes body in
  if pt = pt_sr then begin
    let ssrc = Wire.Reader.u32_int r in
    let ntp_sec = Wire.Reader.u32_int r in
    let ntp_frac = Wire.Reader.u32_int r in
    let rtp_ts = Wire.Reader.u32_int r in
    let packet_count = Wire.Reader.u32_int r in
    let octet_count = Wire.Reader.u32_int r in
    let reports = List.init count (fun _ -> read_report_block r) in
    Sender_report
      { ssrc; info = { ntp_sec; ntp_frac; rtp_ts; packet_count; octet_count }; reports }
  end
  else if pt = pt_rr then begin
    let ssrc = Wire.Reader.u32_int r in
    let reports = List.init count (fun _ -> read_report_block r) in
    Receiver_report { ssrc; reports }
  end
  else if pt = pt_sdes then begin
    let read_chunk () =
      let ssrc = Wire.Reader.u32_int r in
      let rec items acc =
        match Wire.Reader.u8 r with
        | 0 ->
            (* consume chunk padding to the 32-bit boundary *)
            while Wire.Reader.pos r mod 4 <> 0 do
              Wire.Reader.skip r 1
            done;
            List.rev acc
        | 1 ->
            let len = Wire.Reader.u8 r in
            let name = Bytes.to_string (Wire.Reader.take r len) in
            items (Cname name :: acc)
        | ty -> Wire.parse_error "unsupported SDES item type %d" ty
      in
      (ssrc, items [])
    in
    Sdes (List.init count (fun _ -> read_chunk ()))
  end
  else if pt = pt_bye then begin
    let ssrcs = List.init count (fun _ -> Wire.Reader.u32_int r) in
    let reason =
      if Wire.Reader.eof r then None
      else begin
        let len = Wire.Reader.u8 r in
        Some (Bytes.to_string (Wire.Reader.take r len))
      end
    in
    Bye { ssrcs; reason }
  end
  else if pt = pt_rtpfb then begin
    let sender_ssrc = Wire.Reader.u32_int r in
    let media_ssrc = Wire.Reader.u32_int r in
    match count with
    | 1 ->
        let rec fcis acc =
          if Wire.Reader.eof r then List.rev acc
          else begin
            let pid = Wire.Reader.u16 r in
            let blp = Wire.Reader.u16 r in
            fcis ((pid, blp) :: acc)
          end
        in
        Nack { sender_ssrc; media_ssrc; lost = unpack_nack_fci (fcis []) }
    | 15 ->
        let base_seq = Wire.Reader.u16 r in
        let fb_count = Wire.Reader.u8 r in
        let n = Wire.Reader.u8 r in
        let deltas = List.init n (fun _ -> Wire.Reader.u8 r) in
        Twcc { sender_ssrc; media_ssrc; base_seq; fb_count; deltas }
    | fmt -> Wire.parse_error "RTPFB fmt %d unsupported" fmt
  end
  else if pt = pt_psfb then begin
    let sender_ssrc = Wire.Reader.u32_int r in
    let media_ssrc = Wire.Reader.u32_int r in
    match count with
    | 1 -> Pli { sender_ssrc; media_ssrc }
    | 15 ->
        let tag = Bytes.to_string (Wire.Reader.take r 4) in
        if tag <> "REMB" then Wire.parse_error "PSFB/ALFB tag %S" tag;
        let num = Wire.Reader.u8 r in
        let b = Wire.Reader.u8 r in
        let exp = b lsr 2 in
        let mantissa = ((b land 0x3) lsl 16) lor Wire.Reader.u16 r in
        let ssrcs = List.init num (fun _ -> Wire.Reader.u32_int r) in
        Remb { sender_ssrc; bitrate_bps = mantissa lsl exp; ssrcs }
    | fmt -> Wire.parse_error "PSFB fmt %d unsupported" fmt
  end
  else Wire.parse_error "unknown RTCP packet type %d" pt

let parse buf = parse_one (Wire.Reader.of_bytes buf)

let serialize_compound packets =
  let w = Wire.Writer.create () in
  List.iter (fun p -> Wire.Writer.bytes w (serialize p)) packets;
  Wire.Writer.contents w

let parse_compound buf =
  let r = Wire.Reader.of_bytes buf in
  let rec loop acc = if Wire.Reader.eof r then List.rev acc else loop (parse_one r :: acc) in
  loop []

let pp fmt t =
  match t with
  | Sender_report { ssrc; reports; _ } ->
      Format.fprintf fmt "SR{ssrc=%#x reports=%d}" ssrc (List.length reports)
  | Receiver_report { ssrc; reports } ->
      Format.fprintf fmt "RR{ssrc=%#x reports=%d}" ssrc (List.length reports)
  | Sdes chunks -> Format.fprintf fmt "SDES{chunks=%d}" (List.length chunks)
  | Bye { ssrcs; _ } -> Format.fprintf fmt "BYE{ssrcs=%d}" (List.length ssrcs)
  | Nack { media_ssrc; lost; _ } ->
      Format.fprintf fmt "NACK{ssrc=%#x lost=%d}" media_ssrc (List.length lost)
  | Pli { media_ssrc; _ } -> Format.fprintf fmt "PLI{ssrc=%#x}" media_ssrc
  | Remb { bitrate_bps; _ } -> Format.fprintf fmt "REMB{%d bps}" bitrate_bps
  | Twcc { deltas; _ } -> Format.fprintf fmt "TWCC{%d pkts}" (List.length deltas)

let equal a b =
  match (a, b) with
  | Nack n1, Nack n2 ->
      n1.sender_ssrc = n2.sender_ssrc && n1.media_ssrc = n2.media_ssrc
      && List.sort_uniq compare n1.lost = List.sort_uniq compare n2.lost
  | _ -> a = b
