lib/webrtc/client.mli: Codec Netsim Scallop_util
