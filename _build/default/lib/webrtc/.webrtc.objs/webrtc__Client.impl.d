lib/webrtc/client.ml: Array Bytes Char Codec Gcc Hashtbl List Netsim Option Rtp Scallop_util
