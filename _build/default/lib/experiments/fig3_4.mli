(** Figs. 3 and 4 — QoE collapse of an under-provisioned software SFU.

    The software SFU is pinned to a single core (as in the paper's §2.2
    MediaSoup experiment) while meetings of ten participants are built up
    incrementally. The quality of the {e first} meeting is measured as
    load grows: receive jitter (Fig. 3) climbs into the hundreds of
    milliseconds and the decoded frame rate (Fig. 4) collapses once the
    CPU saturates. Paper anchors: 100% CPU around 80 participants,
    noticeable fps drops from ~60, unusable at 100–120.

    Media is scaled down (250 kb/s video, no audio) with the CPU cost
    scaled up correspondingly, keeping the participant-count anchors
    while the simulation stays tractable (DESIGN.md §4). *)

type sample = {
  participants : int;
  jitter_p95_ms : float;
  mean_fps : float;
  cpu_utilization : float;
}

type result = {
  series : sample list;
  saturation_participants : int option;  (** first milestone at >=95% CPU *)
  fps_half_participants : int option;  (** first milestone with fps < 15 *)
  mouth_to_ear_p95_ms : float;
      (** worst p95 capture-to-decode delay across meeting-1 receivers —
          the user-facing cost of the SFU's queueing (paper §2.2) *)
}

val compute : ?quick:bool -> unit -> result
val run : ?quick:bool -> unit -> unit
