(** Table 1 — control/data-plane packet split.

    A three-party Scallop meeting (720p AV1 SVC + audio) runs for ten
    simulated minutes; every packet arriving at the switch is classified
    exactly as the paper's table: RTP (audio / video / AV1 dependency
    structure), RTCP (SR/SDES, RR, RR/REMB), STUN — and rolled up into
    control-plane vs data-plane totals. Counts are reported per
    participant, as in the paper. *)

type row = {
  label : string;
  packets : float;
  packet_pct : float;
  per_sec : float;
  kbytes : float;
  byte_pct : float;
}

type result = {
  rows : row list;
  data_plane_packet_fraction : float;
  data_plane_byte_fraction : float;
}

val compute : ?quick:bool -> unit -> result
(** [quick] runs 60 simulated seconds instead of 600. *)

val run : ?quick:bool -> unit -> unit
