(** Fig. 2 — media streams at the SFU vs meeting size.

    From the synthetic campus dataset: per meeting-size bucket, the range
    and median of concurrently carried SFU streams, against the 2N^2
    upper bound (exceeded only via screen shares). Paper anchors: ~200
    streams already at 10 participants, >700 at 25. *)

type row = { size : int; min : int; median : float; max : int; bound : int }

type result = {
  rows : row list;
  streams_at_10 : int;  (** max observed at size 10 *)
  streams_at_25 : int;
  two_party_fraction : float;
}

val compute : ?quick:bool -> unit -> result
val run : ?quick:bool -> unit -> unit
