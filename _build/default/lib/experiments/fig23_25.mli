(** Figs. 23–25 (Appendix D) — how SVC layer dropping shows up on the wire.

    One sender and two receivers: the SFU reduces receiver A's quality
    mid-run and receiver B's later, mirroring the Zoom trace example.

    - Fig. 23: bytes forwarded to each receiver over time (two distinct
      step-downs);
    - Fig. 24: receiver A's bytes broken down by SVC template id — the
      reduction removes exactly the enhancement-layer templates;
    - Fig. 25: the frame-level schematic: which frames of a 16-frame
      window survive at each decode target. *)

type slice = {
  t_s : float;
  to_a_kbps : float;
  to_b_kbps : float;
  a_by_template : float array;  (** kb/s per template id 0..4 at receiver A *)
}

type result = {
  series : slice list;
  a_enhancement_share_before : float;
  a_enhancement_share_after : float;
}

val compute : ?quick:bool -> unit -> result
val run : ?quick:bool -> unit -> unit
