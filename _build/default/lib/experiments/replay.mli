(** Campus-trace replay — the experiment behind the paper's headline claim
    ("in experiments replaying campus-scale Zoom traces, Scallop handles
    96.5% of all packets and 99.7% of bytes entirely in the hardware-based
    data plane", §1).

    A window of the synthetic campus dataset is replayed {e live} against
    the Scallop stack: meetings are created and joined at (compressed)
    trace times, participants leave when their meeting ends, and every
    packet that reaches the switch is classified. Unlike Table 1's single
    three-party meeting, this exercises the split under churn: joins,
    leaves, many concurrent meetings of trace-realistic sizes. *)

type result = {
  meetings_replayed : int;
  peak_participants : int;
  joins : int;
  leaves : int;
  data_plane_packet_fraction : float;
  data_plane_byte_fraction : float;
  migrations : int;
  freezes : int;
}

val compute : ?quick:bool -> unit -> result
val run : ?quick:bool -> unit -> unit
