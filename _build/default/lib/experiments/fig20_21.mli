(** Figs. 20–21 — concurrent meetings and participants over two weeks.

    Daily peaks from the synthetic campus dataset, showing the diurnal
    weekday pattern with quiet weekends that drives the over-provisioning
    argument of the paper's introduction. *)

type day = { day : int; peak_meetings : float; peak_participants : float }

type result = {
  days : day list;
  overall_peak_meetings : float;
  overall_peak_participants : float;
  weekend_weekday_ratio : float;  (** peak weekend load / peak weekday load *)
}

val compute : ?quick:bool -> unit -> result
val run : ?quick:bool -> unit -> unit
