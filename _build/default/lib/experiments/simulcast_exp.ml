module Table = Scallop_util.Table
module Link = Netsim.Link

type result = {
  fast_kbps : float;
  slow_kbps : float;
  fast_fps : float;
  slow_fps : float;
  freezes : int;
}

let compute ?(quick = false) () =
  let seconds = if quick then 25.0 else 60.0 in
  let stack = Common.make_scallop ~seed:44 () in
  let mid = Scallop.Controller.create_meeting stack.controller in
  let mk i downlink =
    Common.add_client stack.engine stack.network stack.rng ~index:i ~downlink ()
  in
  let sender = mk 0 (Common.client_link ()) in
  let fast = mk 1 (Common.client_link ()) in
  let slow = mk 2 { (Common.client_link ()) with Link.rate_bps = 1.2e6 } in
  let sp = Scallop.Controller.join ~simulcast:true stack.controller mid sender ~send_media:true in
  let fp = Scallop.Controller.join stack.controller mid fast ~send_media:false in
  let lp = Scallop.Controller.join stack.controller mid slow ~send_media:false in
  Common.run_for stack.engine ~seconds;
  let rx_of pid =
    Scallop.Controller.recv_connection stack.controller pid ~from:sp
    |> Option.get |> Webrtc.Client.receiver |> Option.get
  in
  let fast_rx = rx_of fp and slow_rx = rx_of lp in
  let kbps rx = float_of_int (Codec.Video_receiver.bytes_received rx * 8) /. 1000.0 /. seconds in
  let fps rx = float_of_int (Codec.Video_receiver.frames_decoded rx) /. seconds in
  {
    fast_kbps = kbps fast_rx;
    slow_kbps = kbps slow_rx;
    fast_fps = fps fast_rx;
    slow_fps = fps slow_rx;
    freezes = Codec.Video_receiver.freezes fast_rx + Codec.Video_receiver.freezes slow_rx;
  }

let run ?quick () =
  let r = compute ?quick () in
  let table =
    Table.create ~title:"Simulcast splicing (3: the Simulcast sibling of SVC)"
      ~columns:[ "receiver"; "receive rate (kb/s)"; "decoded fps" ]
  in
  Table.add_row table
    [ "healthy downlink"; Table.cell_f ~decimals:0 r.fast_kbps; Table.cell_f ~decimals:1 r.fast_fps ];
  Table.add_row table
    [ "1.2 Mb/s downlink"; Table.cell_f ~decimals:0 r.slow_kbps; Table.cell_f ~decimals:1 r.slow_fps ];
  Table.print table;
  Printf.printf
    "both streams continuous (freezes = %d); the slow receiver was spliced to a cheaper rendition at a key frame\n\n"
    r.freezes
