module Table = Scallop_util.Table
module Engine = Netsim.Engine
module Dd = Av1.Dd

type slice = {
  t_s : float;
  to_a_kbps : float;
  to_b_kbps : float;
  a_by_template : float array;
}

type result = {
  series : slice list;
  a_enhancement_share_before : float;
  a_enhancement_share_after : float;
}

let compute ?(quick = false) () =
  let phase = if quick then 10.0 else 30.0 in
  let stack = Common.make_scallop ~seed:77 () in
  let _mid, members = Common.scallop_meeting stack ~participants:3 ~senders:1 () in
  let pids = List.map fst members in
  let sender = List.nth pids 0 and recv_a = List.nth pids 1 and recv_b = List.nth pids 2 in
  (* per-receiver, per-template byte accounting from the egress pipeline *)
  let horizon = int_of_float (3.0 *. phase) in
  let to_a = Array.make horizon 0.0 in
  let to_b = Array.make horizon 0.0 in
  let a_tpl = Array.make_matrix horizon 5 0.0 in
  Scallop.Dataplane.set_egress_hook stack.dp (fun ~receiver ~ssrc:_ ~template ~size ->
      let sec = Engine.now stack.engine / 1_000_000_000 in
      if sec < horizon then begin
        let kbits = float_of_int (size * 8) /. 1000.0 in
        if receiver = recv_a then begin
          to_a.(sec) <- to_a.(sec) +. kbits;
          match template with
          | Some id when id < 5 -> a_tpl.(sec).(id) <- a_tpl.(sec).(id) +. kbits
          | Some _ | None -> ()
        end
        else if receiver = recv_b then to_b.(sec) <- to_b.(sec) +. kbits
      end);
  ignore sender;
  Common.run_for stack.engine ~seconds:phase;
  (* receiver A's downlink deteriorates first, receiver B's later — the
     Zoom-trace scenario of Fig. 23 *)
  Netsim.Link.set_rate (Netsim.Network.downlink stack.network ~ip:(Common.client_ip 1)) 2.0e6;
  Common.run_for stack.engine ~seconds:phase;
  Netsim.Link.set_rate (Netsim.Network.downlink stack.network ~ip:(Common.client_ip 2)) 1.2e6;
  Common.run_for stack.engine ~seconds:phase;
  let series =
    List.init horizon (fun s ->
        {
          t_s = float_of_int s;
          to_a_kbps = to_a.(s);
          to_b_kbps = to_b.(s);
          a_by_template = a_tpl.(s);
        })
  in
  let enhancement_share lo hi =
    let enh = ref 0.0 and total = ref 0.0 in
    for s = lo to hi - 1 do
      for id = 0 to 4 do
        total := !total +. a_tpl.(s).(id);
        if id >= 3 then enh := !enh +. a_tpl.(s).(id)
      done
    done;
    if !total = 0.0 then 0.0 else !enh /. !total
  in
  let p = int_of_float phase in
  {
    series;
    a_enhancement_share_before = enhancement_share (p - 6) p;
    a_enhancement_share_after = enhancement_share ((2 * p) - 6) (2 * p);
  }

let run ?quick () =
  let r = compute ?quick () in
  let table =
    Table.create
      ~title:"Fig 23-24: forwarded kb/s per receiver and per SVC template (receiver A)"
      ~columns:[ "t (s)"; "to A"; "to B"; "A tpl0"; "A tpl1"; "A tpl2"; "A tpl3"; "A tpl4" ]
  in
  List.iter
    (fun s ->
      if int_of_float s.t_s mod 3 = 1 then
        Table.add_row table
          ([ Table.cell_f ~decimals:0 s.t_s; Table.cell_f ~decimals:0 s.to_a_kbps;
             Table.cell_f ~decimals:0 s.to_b_kbps ]
          @ (Array.to_list s.a_by_template |> List.map (Table.cell_f ~decimals:0))))
    r.series;
  Table.print table;
  Printf.printf
    "receiver A's T2-template byte share: %.1f%% before vs %.1f%% after reduction \
     (paper: enhancement templates vanish from the forwarded set)\n\n"
    (100.0 *. r.a_enhancement_share_before)
    (100.0 *. r.a_enhancement_share_after);
  (* Fig 25: frame-survival schematic for a 16-frame window *)
  let schematic =
    Table.create ~title:"Fig 25: frames forwarded per decode target (16-frame window)"
      ~columns:[ "target"; "frames kept (x = forwarded)" ]
  in
  List.iter
    (fun dt ->
      let marks =
        String.concat ""
          (List.init 16 (fun f ->
               if Scallop.Seq_rewrite.suppressed_by_cadence dt f then "." else "x"))
      in
      Table.add_row schematic [ Printf.sprintf "%.1f fps" (Dd.fps_of_target dt); marks ])
    [ Dd.DT_30fps; Dd.DT_15fps; Dd.DT_7_5fps ];
  Table.print schematic;
  print_newline ()
