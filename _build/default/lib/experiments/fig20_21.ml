module Table = Scallop_util.Table
module Rng = Scallop_util.Rng
module Timeseries = Scallop_util.Timeseries

type day = { day : int; peak_meetings : float; peak_participants : float }

type result = {
  days : day list;
  overall_peak_meetings : float;
  overall_peak_participants : float;
  weekend_weekday_ratio : float;
}

let day_ns = 24 * 3_600_000_000_000

let daily_peaks ts ~days =
  let peaks = Array.make days 0.0 in
  Array.iter
    (fun (time, v) ->
      let d = time / day_ns in
      if d >= 0 && d < days then peaks.(d) <- Float.max peaks.(d) v)
    (Timeseries.bins ts);
  peaks

let compute ?(quick = false) () =
  let meetings = if quick then 4_000 else 19_704 in
  let days = 14 in
  let dataset = Trace.Dataset.generate (Rng.create 7) ~days ~meetings () in
  let meetings_ts, participants_ts =
    Trace.Dataset.concurrency_series dataset ~bin_ns:60_000_000_000
  in
  let m_peaks = daily_peaks meetings_ts ~days in
  let p_peaks = daily_peaks participants_ts ~days in
  let day_rows =
    List.init days (fun d ->
        { day = d; peak_meetings = m_peaks.(d); peak_participants = p_peaks.(d) })
  in
  let weekday, weekend =
    List.partition (fun d -> d.day mod 7 < 5) day_rows
  in
  let peak_of rows = List.fold_left (fun acc d -> Float.max acc d.peak_meetings) 0.0 rows in
  {
    days = day_rows;
    overall_peak_meetings = Array.fold_left Float.max 0.0 m_peaks;
    overall_peak_participants = Array.fold_left Float.max 0.0 p_peaks;
    weekend_weekday_ratio = peak_of weekend /. Float.max 1.0 (peak_of weekday);
  }

let run ?quick () =
  let r = compute ?quick () in
  let table =
    Table.create ~title:"Figs 20-21: daily peak concurrency (campus, 2 weeks)"
      ~columns:[ "day"; "peak meetings"; "peak participants" ]
  in
  List.iter
    (fun d ->
      Table.add_row table
        [
          Printf.sprintf "%d (%s)" d.day
            (if d.day mod 7 >= 5 then "weekend" else "weekday");
          Table.cell_f ~decimals:0 d.peak_meetings;
          Table.cell_f ~decimals:0 d.peak_participants;
        ])
    r.days;
  Table.print table;
  Printf.printf
    "overall peaks: %.0f meetings, %.0f participants; weekend/weekday peak ratio %.2f \
     (paper: strong diurnal weekday pattern, quiet weekends)\n\n"
    r.overall_peak_meetings r.overall_peak_participants r.weekend_weekday_ratio
