module Table = Scallop_util.Table
module Rng = Scallop_util.Rng
module Timeseries = Scallop_util.Timeseries

type result = {
  software_peak_mbps : float;
  agent_peak_mbps : float;
  reduction : float;
  daily_software_peaks : (int * float) list;
}

let day_ns = 24 * 3_600_000_000_000

let compute ?(quick = false) () =
  (* one week of the two-week dataset: half the paper's 19,704 meetings *)
  let meetings = if quick then 4_000 else 9_852 in
  let dataset = Trace.Dataset.generate (Rng.create 7) ~days:7 ~meetings () in
  let software, agent = Trace.Dataset.byte_rate_series dataset ~bin_ns:300_000_000_000 in
  let to_mbps rates = Array.map (fun (t, bytes_per_s) -> (t, bytes_per_s *. 8.0 /. 1e6)) rates in
  let sw = to_mbps (Timeseries.rates_per_second software) in
  let ag = to_mbps (Timeseries.rates_per_second agent) in
  let peak a = Array.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 a in
  let daily =
    List.init 7 (fun d ->
        let lo = float_of_int (d * day_ns) /. 1e9 and hi = float_of_int ((d + 1) * day_ns) /. 1e9 in
        let p =
          Array.fold_left
            (fun acc (t, v) -> if t >= lo && t < hi then Float.max acc v else acc)
            0.0 sw
        in
        (d, p))
  in
  let software_peak_mbps = peak sw and agent_peak_mbps = peak ag in
  {
    software_peak_mbps;
    agent_peak_mbps;
    reduction = software_peak_mbps /. Float.max 0.001 agent_peak_mbps;
    daily_software_peaks = daily;
  }

let run ?quick () =
  let r = compute ?quick () in
  let table =
    Table.create ~title:"Fig 22: bytes processed in software, campus week"
      ~columns:[ "day"; "software SFU peak (Mb/s)" ]
  in
  List.iter
    (fun (d, p) -> Table.add_row table [ Table.cell_i d; Table.cell_f ~decimals:1 p ])
    r.daily_software_peaks;
  Table.print table;
  Printf.printf
    "peak software SFU load %.1f Mb/s vs switch agent %.2f Mb/s — %.0fx reduction \
     (paper: ~1250 vs ~4.4 Mb/s, ~284x)\n\n"
    r.software_peak_mbps r.agent_peak_mbps r.reduction
