module Table = Scallop_util.Table
module Rng = Scallop_util.Rng
module Timeseries = Scallop_util.Timeseries

type result = {
  rows : Tofino.Resources.row list;
  egress_campus_gbps : float;
  egress_max_gbps : float;
  stages_fit : bool;
}

(* Egress share of the campus byte rate: the fan-out legs, i.e. the
   software series minus the uplink share. *)
let campus_egress_gbps ~quick =
  let meetings = if quick then 4_000 else 19_704 in
  let dataset = Trace.Dataset.generate (Rng.create 7) ~days:7 ~meetings () in
  let software, _ = Trace.Dataset.byte_rate_series dataset ~bin_ns:300_000_000_000 in
  let peak =
    Array.fold_left
      (fun acc (_, bytes_per_s) -> Float.max acc bytes_per_s)
      0.0
      (Timeseries.rates_per_second software)
  in
  (* size/(size+1) of a meeting's legs are egress; ~5/6 for typical sizes *)
  peak *. 8.0 /. 1e9 *. 0.85

let compute ?(quick = false) () =
  let stack = Common.make_scallop ~seed:3 () in
  let _ = Common.scallop_meeting stack ~participants:3 ~senders:3 () in
  Common.run_for stack.engine ~seconds:2.0;
  let program = Scallop.Dataplane.resource_program stack.dp in
  {
    rows = Tofino.Resources.report program;
    egress_campus_gbps = campus_egress_gbps ~quick;
    egress_max_gbps =
      float_of_int Scallop.Dataplane.stream_index_capacity *. 3.0e6 /. 1e9;
    stages_fit = Tofino.Resources.stages_ok program;
  }

let run ?quick () =
  let r = compute ?quick () in
  let table =
    Table.create ~title:"Table 3: Tofino resource usage of the data plane"
      ~columns:[ "Resource type"; "Scaling"; "Usage" ]
  in
  List.iter
    (fun (row : Tofino.Resources.row) ->
      Table.add_row table [ row.resource; row.scaling; row.usage ])
    r.rows;
  Table.add_row table
    [ "Egress Tput (campus peak)"; "Quadratic"; Printf.sprintf "%.1f Gb/s" r.egress_campus_gbps ];
  Table.add_row table
    [ "Egress Tput (max util.)"; "Quadratic"; Printf.sprintf "%.0f Gb/s" r.egress_max_gbps ];
  Table.print table;
  Printf.printf "program fits the pipeline: %b (paper: Ing. 7 / Eg. 5 stages, all resources <22%%)\n\n"
    r.stages_fit
