(** Simulcast splicing demonstration (§3 names Simulcast as the sibling
    scalability technology Zoom combines with SVC).

    One simulcast sender (2.5 M / 900 k / 300 k renditions), one healthy
    and one constrained receiver: the switch splices the constrained
    receiver onto a cheaper rendition at a key frame — both receivers see
    a single continuous stream at full frame rate, no freezes. *)

type result = {
  fast_kbps : float;
  slow_kbps : float;
  fast_fps : float;
  slow_fps : float;
  freezes : int;
}

val compute : ?quick:bool -> unit -> result
val run : ?quick:bool -> unit -> unit
