(** Table 3 — Tofino resource utilization of the Scallop data plane.

    Static accounting of the data-plane program (tables, registers,
    parser depths, PHV, VLIW) against Tofino2 per-stage budgets, plus the
    two egress-throughput rows: under peak campus load (from the Fig. 22
    dataset) and at maximum utilization (65,536 concurrent rate-adapted
    streams at ~3 Mb/s each ≈ 197 Gb/s). *)

type result = {
  rows : Tofino.Resources.row list;
  egress_campus_gbps : float;
  egress_max_gbps : float;
  stages_fit : bool;
}

val compute : ?quick:bool -> unit -> result
val run : ?quick:bool -> unit -> unit
