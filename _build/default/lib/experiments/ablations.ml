module Addr = Scallop_util.Addr
module Rng = Scallop_util.Rng
module Table = Scallop_util.Table
module Timeseries = Scallop_util.Timeseries
module Engine = Netsim.Engine
module Network = Netsim.Network
module Link = Netsim.Link

(* A Scallop stack whose switch agent can be crippled per ablation. *)
let make_stack ~seed ~rewriting_enabled ~feedback_filter =
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let network = Network.create engine (Rng.split rng) in
  let sfu_ip = Addr.ip_of_string "10.0.0.1" in
  Network.add_host network ~ip:sfu_ip ~uplink:Common.fast_link ~downlink:Common.fast_link ();
  let dp = Scallop.Dataplane.create engine network ~ip:sfu_ip () in
  let agent = Scallop.Switch_agent.create engine dp ~rewriting_enabled ~feedback_filter () in
  let controller =
    Scallop.Controller.create engine network (Rng.split rng) ~agents:[ (agent, dp) ] ()
  in
  (engine, rng, network, controller)

let add_client engine network rng ~index ?(downlink = Common.client_link ()) () =
  let ip = Common.client_ip index in
  Network.add_host network ~ip ~uplink:(Common.client_link ()) ~downlink ();
  Webrtc.Client.create engine network (Rng.split rng) (Webrtc.Client.default_config ~ip)

let tail_rate_kbps rx ~seconds ~window =
  let bins = Timeseries.bins (Codec.Video_receiver.bitrate_series rx) in
  let lo = seconds - window in
  let bytes =
    Array.fold_left
      (fun acc (time, v) ->
        let s = time / 1_000_000_000 in
        if s >= lo && s < seconds then acc +. v else acc)
      0.0 bins
  in
  bytes *. 8.0 /. 1000.0 /. float_of_int window

(* --- §5.3: best-downlink filter vs naive REMB forwarding ------------------ *)

type filter_result = {
  sender_bitrate_filtered : int;
  sender_bitrate_naive : int;
  fast_receiver_kbps_filtered : float;
  fast_receiver_kbps_naive : float;
}

let filter_scenario ~seed ~feedback_filter ~seconds =
  let engine, rng, network, controller =
    make_stack ~seed ~rewriting_enabled:true ~feedback_filter
  in
  let mid = Scallop.Controller.create_meeting controller in
  let sender = add_client engine network rng ~index:0 () in
  let fast = add_client engine network rng ~index:1 () in
  let slow =
    add_client engine network rng ~index:2
      ~downlink:{ (Common.client_link ()) with rate_bps = 1.2e6 }
      ()
  in
  let sp = Scallop.Controller.join controller mid sender ~send_media:true in
  let fp = Scallop.Controller.join controller mid fast ~send_media:false in
  let _lp = Scallop.Controller.join controller mid slow ~send_media:false in
  Engine.run engine ~until:(Engine.sec (float_of_int seconds));
  let send_conn = Option.get (Scallop.Controller.send_connection controller sp) in
  let fast_rx =
    Scallop.Controller.recv_connection controller fp ~from:sp
    |> Option.get |> Webrtc.Client.receiver |> Option.get
  in
  (Webrtc.Client.video_bitrate send_conn, tail_rate_kbps fast_rx ~seconds ~window:5)

let filter_ablation ?(quick = false) () =
  let seconds = if quick then 20 else 40 in
  let br_f, kbps_f = filter_scenario ~seed:51 ~feedback_filter:true ~seconds in
  let br_n, kbps_n = filter_scenario ~seed:51 ~feedback_filter:false ~seconds in
  {
    sender_bitrate_filtered = br_f;
    sender_bitrate_naive = br_n;
    fast_receiver_kbps_filtered = kbps_f;
    fast_receiver_kbps_naive = kbps_n;
  }

(* --- §6.2: sequence rewriting vs raw gaps ---------------------------------- *)

type rewrite_result = {
  nacks_with_rewrite : int;
  nacks_without_rewrite : int;
  fps_with_rewrite : float;
  fps_without_rewrite : float;
}

let rewrite_scenario ~seed ~rewriting_enabled ~seconds =
  let engine, rng, network, controller =
    make_stack ~seed ~rewriting_enabled ~feedback_filter:true
  in
  let mid = Scallop.Controller.create_meeting controller in
  let sender = add_client engine network rng ~index:0 () in
  let watcher = add_client engine network rng ~index:1 () in
  (* a downlink that fits the 15 fps layers but not the full stream *)
  let reduced =
    add_client engine network rng ~index:2
      ~downlink:{ (Common.client_link ()) with rate_bps = 2.0e6 }
      ()
  in
  let sp = Scallop.Controller.join controller mid sender ~send_media:true in
  let _wp = Scallop.Controller.join controller mid watcher ~send_media:false in
  let rp = Scallop.Controller.join controller mid reduced ~send_media:false in
  Engine.run engine ~until:(Engine.sec (float_of_int seconds));
  let rx =
    Scallop.Controller.recv_connection controller rp ~from:sp
    |> Option.get |> Webrtc.Client.receiver |> Option.get
  in
  let fps =
    float_of_int (Codec.Video_receiver.frames_decoded rx) /. float_of_int seconds
  in
  (Codec.Video_receiver.nacks_sent rx, fps)

let rewrite_ablation ?(quick = false) () =
  let seconds = if quick then 20 else 40 in
  let nacks_r, fps_r = rewrite_scenario ~seed:52 ~rewriting_enabled:true ~seconds in
  let nacks_n, fps_n = rewrite_scenario ~seed:52 ~rewriting_enabled:false ~seconds in
  {
    nacks_with_rewrite = nacks_r;
    nacks_without_rewrite = nacks_n;
    fps_with_rewrite = fps_r;
    fps_without_rewrite = fps_n;
  }

let run ?quick () =
  let f = filter_ablation ?quick () in
  let t1 =
    Table.create ~title:"Ablation: best-downlink REMB filter (5.3)"
      ~columns:[ "mode"; "sender encode rate (kb/s)"; "fast receiver rate (kb/s)" ]
  in
  Table.add_row t1
    [ "Scallop filter"; Table.cell_i (f.sender_bitrate_filtered / 1000);
      Table.cell_f ~decimals:0 f.fast_receiver_kbps_filtered ];
  Table.add_row t1
    [ "naive (all REMBs)"; Table.cell_i (f.sender_bitrate_naive / 1000);
      Table.cell_f ~decimals:0 f.fast_receiver_kbps_naive ];
  Table.print t1;
  print_string
    "paper 5.3: without the filter, all send rates converge to the slowest receiver\n\n";
  let r = rewrite_ablation ?quick () in
  let t2 =
    Table.create ~title:"Ablation: sequence rewriting (6.2)"
      ~columns:[ "mode"; "NACKed seqs at reduced receiver"; "decoded fps" ]
  in
  Table.add_row t2
    [ "S-LM rewriting"; Table.cell_i r.nacks_with_rewrite;
      Table.cell_f ~decimals:1 r.fps_with_rewrite ];
  Table.add_row t2
    [ "raw gaps"; Table.cell_i r.nacks_without_rewrite;
      Table.cell_f ~decimals:1 r.fps_without_rewrite ];
  Table.print t2;
  print_string
    "paper 6.2: unmasked intentional gaps make receivers request retransmissions forever\n\n"
