(** Fig. 18 — retransmission overhead of sequence-number rewriting.

    A long SVC stream is rate-adapted to 15 fps (T2 frames suppressed at
    the SFU) while its uplink suffers iid loss and reordering. The
    surviving packets pass through a rewriting heuristic (S-LR or S-LM)
    and, in parallel, through an oracle that knows exactly which packets
    were suppressed. The receiver NACKs every sequence gap it sees; the
    overhead is the fraction of forwarded packets whose gaps were
    {e artificial} — NACKed only because the heuristic failed to mask an
    intentional gap (paper: <5% at 10% loss, ~7.5% at 20%, <20% at 40%).

    The experiment also verifies the invariant the paper treats as
    non-negotiable: the heuristic never emits a duplicate sequence
    number. *)

type point = {
  loss : float;
  overhead_slr : float;
  overhead_slm : float;
  overhead_slr_bursty : float;
      (** same average loss but Gilbert-Elliott bursts (mean burst ~5
          packets) — the "high loss" regime the paper designs S-LR for *)
  duplicates : int;  (** across all heuristic runs; must be 0 *)
}

type result = { points : point list }

val compute : ?quick:bool -> ?reorder:float -> unit -> result
val run : ?quick:bool -> unit -> unit
