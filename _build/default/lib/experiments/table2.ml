module Table = Scallop_util.Table
module Addr = Scallop_util.Addr

type result = {
  duration_s : float;
  packets : int;
  packets_per_s : float;
  flows : int;
  megabytes : float;
  mbit_per_s : float;
  rtp_streams : int;
}

let compute ?(quick = false) () =
  let duration_s = if quick then 30.0 else 120.0 in
  let meetings = if quick then 2 else 4 in
  let stack = Common.make_scallop ~seed:71 () in
  let flows = Hashtbl.create 256 in
  let ssrcs = Hashtbl.create 64 in
  let packets = ref 0 in
  let bytes = ref 0 in
  (* capture at the switch, exactly where the paper's filter ran *)
  List.iter
    (fun i ->
      let sizes = [| 2; 3; 4; 5 |] in
      let participants = sizes.(i mod Array.length sizes) in
      let _, members =
        Common.scallop_meeting stack ~participants ~senders:participants
          ~index_base:(i * 10) ()
      in
      List.iter
        (fun (_, client) ->
          Webrtc.Client.set_tx_hook client (fun ~time_ns:_ dgram ->
              incr packets;
              bytes := !bytes + Netsim.Dgram.wire_size dgram;
              Hashtbl.replace flows (dgram.Netsim.Dgram.src, dgram.Netsim.Dgram.dst) ();
              match Rtp.Demux.classify dgram.Netsim.Dgram.payload with
              | Rtp.Demux.Rtp_media ->
                  (try
                     let p = Rtp.Packet.parse dgram.Netsim.Dgram.payload in
                     Hashtbl.replace ssrcs p.Rtp.Packet.ssrc ()
                   with Rtp.Wire.Parse_error _ -> ())
              | _ -> ()))
        members)
    (List.init meetings Fun.id);
  Common.run_for stack.engine ~seconds:duration_s;
  (* the switch also emits towards clients: count its egress too, as the
     capture point (a border switch) would *)
  let egress_pkts = Scallop.Dataplane.egress_pkts stack.dp in
  let egress_bytes = Scallop.Dataplane.egress_bytes stack.dp in
  let total_packets = !packets + egress_pkts in
  let total_bytes = !bytes + egress_bytes in
  {
    duration_s;
    packets = total_packets;
    packets_per_s = float_of_int total_packets /. duration_s;
    flows = Hashtbl.length flows * 2 (* both directions *);
    megabytes = float_of_int total_bytes /. 1e6;
    mbit_per_s = float_of_int (total_bytes * 8) /. 1e6 /. duration_s;
    rtp_streams = Hashtbl.length ssrcs;
  }

let run ?quick () =
  let r = compute ?quick () in
  let table = Table.create ~title:"Table 2: capture summary (simulated)" ~columns:[ "metric"; "value" ] in
  Table.add_row table [ "Capture duration"; Printf.sprintf "%.0f s" r.duration_s ];
  Table.add_row table
    [ "VCA packets"; Printf.sprintf "%d (%.0f/s)" r.packets r.packets_per_s ];
  Table.add_row table [ "VCA flows"; Table.cell_i r.flows ];
  Table.add_row table
    [ "VCA data"; Printf.sprintf "%.1f MB (%.1f Mbit/s)" r.megabytes r.mbit_per_s ];
  Table.add_row table [ "RTP media streams"; Table.cell_i r.rtp_streams ];
  Table.print table;
  print_string
    "paper (12h campus capture): 1,846M packets (42,733/s), 583,777 flows, 1,203 GB, 59,020 RTP streams\n\n"
