lib/experiments/fig17.ml: Float List Printf Scallop Scallop_util Sfu
