lib/experiments/fig20_21.mli:
