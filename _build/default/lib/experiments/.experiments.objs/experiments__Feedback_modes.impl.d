lib/experiments/feedback_modes.ml: Common Float Printf Scallop Scallop_util Webrtc
