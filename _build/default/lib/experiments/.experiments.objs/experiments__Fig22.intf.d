lib/experiments/fig22.mli:
