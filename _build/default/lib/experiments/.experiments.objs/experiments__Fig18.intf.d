lib/experiments/fig18.mli:
