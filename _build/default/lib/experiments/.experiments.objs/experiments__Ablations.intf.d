lib/experiments/ablations.mli:
