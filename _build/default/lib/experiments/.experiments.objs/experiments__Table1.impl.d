lib/experiments/table1.ml: Common List Printf Scallop Scallop_util
