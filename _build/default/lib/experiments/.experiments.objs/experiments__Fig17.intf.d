lib/experiments/fig17.mli:
