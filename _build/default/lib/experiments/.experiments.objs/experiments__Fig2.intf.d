lib/experiments/fig2.mli:
