lib/experiments/fig14.mli: Av1
