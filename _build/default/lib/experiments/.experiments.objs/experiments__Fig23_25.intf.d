lib/experiments/fig23_25.mli:
