lib/experiments/fig19.ml: Common Hashtbl List Netsim Printf Rtp Scallop_util Webrtc
