lib/experiments/simulcast_exp.mli:
