lib/experiments/table3.ml: Array Common Float List Printf Scallop Scallop_util Tofino Trace
