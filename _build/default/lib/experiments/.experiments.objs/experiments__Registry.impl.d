lib/experiments/registry.ml: Ablations Feedback_modes Fig14 Fig15 Fig16 Fig17 Fig18 Fig19 Fig2 Fig20_21 Fig22 Fig23_25 Fig3_4 List Printf Replay Simulcast_exp Table1 Table2 Table3
