lib/experiments/ablations.ml: Array Codec Common Netsim Option Scallop Scallop_util Webrtc
