lib/experiments/replay.ml: Array Codec Common Float List Netsim Printf Scallop Scallop_util Trace Webrtc
