lib/experiments/fig14.ml: Array Av1 Codec Common List Netsim Option Printf Scallop Scallop_util Webrtc
