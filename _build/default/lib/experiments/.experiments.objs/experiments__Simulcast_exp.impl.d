lib/experiments/simulcast_exp.ml: Codec Common Netsim Option Printf Scallop Scallop_util Webrtc
