lib/experiments/fig20_21.ml: Array Float List Printf Scallop_util Trace
