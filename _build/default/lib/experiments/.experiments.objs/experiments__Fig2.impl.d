lib/experiments/fig2.ml: List Printf Scallop_util Trace
