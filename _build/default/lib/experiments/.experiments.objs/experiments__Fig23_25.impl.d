lib/experiments/fig23_25.ml: Array Av1 Common List Netsim Printf Scallop Scallop_util String
