lib/experiments/fig3_4.mli:
