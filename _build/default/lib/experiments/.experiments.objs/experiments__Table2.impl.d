lib/experiments/table2.ml: Array Common Fun Hashtbl List Netsim Printf Rtp Scallop Scallop_util Webrtc
