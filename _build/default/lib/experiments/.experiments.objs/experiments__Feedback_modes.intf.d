lib/experiments/feedback_modes.mli:
