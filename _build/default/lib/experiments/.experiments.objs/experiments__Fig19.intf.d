lib/experiments/fig19.mli: Scallop_util
