lib/experiments/fig15.ml: List Printf Scallop Scallop_util
