lib/experiments/fig3_4.ml: Array Codec Common Float Hashtbl List Netsim Option Printf Scallop_util Sfu Webrtc
