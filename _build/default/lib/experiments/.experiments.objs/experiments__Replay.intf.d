lib/experiments/replay.mli:
