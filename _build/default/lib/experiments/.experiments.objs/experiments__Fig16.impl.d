lib/experiments/fig16.ml: List Printf Scallop Scallop_util Sfu
