lib/experiments/fig22.ml: Array Float List Printf Scallop_util Trace
