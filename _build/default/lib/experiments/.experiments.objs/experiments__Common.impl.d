lib/experiments/common.ml: List Netsim Printf Scallop Scallop_util Sfu Webrtc
