lib/experiments/fig18.ml: Array Av1 Float Hashtbl List Scallop Scallop_util
