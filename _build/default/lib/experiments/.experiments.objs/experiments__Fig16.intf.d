lib/experiments/fig16.mli:
