lib/experiments/registry.mli:
