lib/experiments/common.mli: Netsim Scallop Scallop_util Sfu Webrtc
