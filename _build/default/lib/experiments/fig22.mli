(** Fig. 22 — bytes a software SFU vs the Scallop switch agent would
    process under a week of campus load.

    The software SFU touches every media byte; the agent only sees the
    control-plane share measured in Table 1 (~0.35% of bytes). Paper
    peaks: ~1250 Mb/s software vs ~4.4 Mb/s agent. *)

type result = {
  software_peak_mbps : float;
  agent_peak_mbps : float;
  reduction : float;
  daily_software_peaks : (int * float) list;
}

val compute : ?quick:bool -> unit -> result
val run : ?quick:bool -> unit -> unit
