module Table = Scallop_util.Table
module Rng = Scallop_util.Rng

type row = { size : int; min : int; median : float; max : int; bound : int }

type result = {
  rows : row list;
  streams_at_10 : int;
  streams_at_25 : int;
  two_party_fraction : float;
}

let compute ?(quick = false) () =
  let meetings = if quick then 4_000 else 19_704 in
  let dataset = Trace.Dataset.generate (Rng.create 7) ~meetings () in
  let rows =
    Trace.Dataset.fig2_rows dataset
    |> List.map (fun (size, min, median, max, bound) -> { size; min; median; max; bound })
  in
  let max_at n =
    match List.find_opt (fun r -> r.size = n) rows with Some r -> r.max | None -> 0
  in
  {
    rows;
    streams_at_10 = max_at 10;
    streams_at_25 = max_at 25;
    two_party_fraction = Trace.Dataset.two_party_fraction dataset;
  }

let run ?quick () =
  let r = compute ?quick () in
  let table =
    Table.create ~title:"Fig 2: media streams at the SFU per meeting size"
      ~columns:[ "participants"; "min"; "median"; "max"; "2N^2 bound" ]
  in
  List.iter
    (fun row ->
      if row.size <= 30 then
        Table.add_row table
          [
            Table.cell_i row.size;
            Table.cell_i row.min;
            Table.cell_f ~decimals:1 row.median;
            Table.cell_i row.max;
            Table.cell_i row.bound;
          ])
    r.rows;
  Table.print table;
  Printf.printf
    "max streams at 10 participants: %d (paper: ~200); at 25: %d (paper: >700); \
     two-party meetings: %.0f%% (paper: 60%%)\n\n"
    r.streams_at_10 r.streams_at_25
    (100.0 *. r.two_party_fraction)
