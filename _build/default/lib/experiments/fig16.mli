(** Fig. 16 — best-case and worst-case meeting counts.

    For each meeting size N, the upper bound of each system's band has a
    single sender (e.g. a lecture) and the lower bound has all N
    participants sending. Scallop uses the best feasible tree design per
    configuration; the server uses the 32-core leg model. The paper's
    observation to preserve: Scallop supports more meetings than software
    at every point, with both bands separated by orders of magnitude. *)

type point = {
  participants : int;
  scallop_low : int;
  scallop_high : int;
  software_low : int;
  software_high : int;
}

type result = { points : point list; always_ahead : bool }

val compute : ?quick:bool -> unit -> result
val run : ?quick:bool -> unit -> unit
