module Table = Scallop_util.Table
module Cap = Scallop.Capacity

type point = {
  participants : int;
  scallop_low : int;
  scallop_high : int;
  software_low : int;
  software_high : int;
}

type result = { points : point list; always_ahead : bool }

let compute ?(quick = false) () =
  let max_n = if quick then 16 else 30 in
  let points =
    List.init (max_n - 1) (fun i ->
        let n = i + 2 in
        let scallop ~senders =
          if n = 2 then
            Cap.meetings_supported Cap.Two_party ~participants:n ~senders ()
          else
            (* worst case assumes sender-specific adaptation with the
               heavier rewrite variant; best case no adaptation at all *)
            max 1 (Cap.meetings_supported ~rewrite:Scallop.Seq_rewrite.S_LM Cap.Nra ~participants:n ~senders ())
        in
        let scallop_low =
          if n = 2 then Cap.meetings_supported Cap.Two_party ~participants:2 ~senders:2 ()
          else
            Cap.meetings_supported ~rewrite:Scallop.Seq_rewrite.S_LR Cap.Ra_sr
              ~participants:n ~senders:n ()
        in
        {
          participants = n;
          scallop_low;
          scallop_high = scallop ~senders:1;
          software_low = Sfu.Capacity.meetings_supported ~participants:n ~senders:n ~media_types:2 ();
          software_high = Sfu.Capacity.meetings_supported ~participants:n ~senders:1 ~media_types:2 ();
        })
  in
  let always_ahead =
    List.for_all
      (fun p -> p.scallop_low > p.software_high && p.scallop_high > p.software_high)
      points
  in
  { points; always_ahead }

let run ?quick () =
  let r = compute ?quick () in
  let table =
    Table.create ~title:"Fig 16: meetings supported (low = all send, high = one sender)"
      ~columns:[ "participants"; "Scallop low"; "Scallop high"; "server low"; "server high" ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [
          Table.cell_i p.participants;
          Table.cell_i p.scallop_low;
          Table.cell_i p.scallop_high;
          Table.cell_i p.software_low;
          Table.cell_i p.software_high;
        ])
    r.points;
  Table.print table;
  Printf.printf "Scallop ahead of software at every configuration: %b (paper: always)\n\n"
    r.always_ahead
