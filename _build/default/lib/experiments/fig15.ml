module Table = Scallop_util.Table
module Cap = Scallop.Capacity

type point = { participants : int; gain_low : float; gain_high : float }

type result = {
  two_party_gain : float;
  points : point list;
  min_gain : float;
  max_gain : float;
}

let compute ?(quick = false) () =
  let max_n = if quick then 16 else 30 in
  let two_party_gain =
    Cap.gain_over_software Cap.Two_party ~participants:2 ~senders:2 ()
  in
  let points =
    List.init (max_n - 2) (fun i ->
        let n = i + 3 in
        {
          participants = n;
          (* worst configuration: everyone sends, sender-specific
             adaptation, the heavier rewrite variant *)
          gain_low =
            Cap.gain_over_software ~rewrite:Scallop.Seq_rewrite.S_LR Cap.Ra_sr
              ~participants:n ~senders:n ();
          (* best configuration: a single sender, no adaptation needed *)
          gain_high =
            Cap.gain_over_software ~rewrite:Scallop.Seq_rewrite.S_LM Cap.Nra
              ~participants:n ~senders:1 ();
        })
  in
  let gains =
    two_party_gain :: List.concat_map (fun p -> [ p.gain_low; p.gain_high ]) points
  in
  {
    two_party_gain;
    points;
    min_gain = List.fold_left min infinity gains;
    max_gain = List.fold_left max 0.0 gains;
  }

let run ?quick () =
  let r = compute ?quick () in
  let table =
    Table.create ~title:"Fig 15: scalability gain over a 32-core server (all senders)"
      ~columns:[ "participants"; "gain (low: RA-SR/S-LR)"; "gain (high: NRA/S-LM)" ]
  in
  Table.add_row table [ "2 (two-party path)"; Table.cell_f r.two_party_gain; Table.cell_f r.two_party_gain ];
  List.iter
    (fun p ->
      Table.add_row table
        [ Table.cell_i p.participants; Table.cell_f p.gain_low; Table.cell_f p.gain_high ])
    r.points;
  Table.print table;
  Printf.printf "gain range: %.1fx - %.1fx (paper: 7x - 210x)\n\n" r.min_gain r.max_gain
