module Table = Scallop_util.Table

type row = {
  label : string;
  packets : float;
  packet_pct : float;
  per_sec : float;
  kbytes : float;
  byte_pct : float;
}

type result = {
  rows : row list;
  data_plane_packet_fraction : float;
  data_plane_byte_fraction : float;
}

let compute ?(quick = false) () =
  let seconds = if quick then 60.0 else 600.0 in
  let stack = Common.make_scallop ~seed:11 () in
  let _mid, _members = Common.scallop_meeting stack ~participants:3 ~senders:3 () in
  Common.run_for stack.engine ~seconds;
  let c = Scallop.Dataplane.ingress_counters stack.dp in
  (* per participant, as the paper reports *)
  let participants = 3.0 in
  let f x = float_of_int x /. participants in
  let rtp_p = f (c.rtp_audio_pkts + c.rtp_video_pkts + c.rtp_av1_ds_pkts) in
  let rtp_b = f (c.rtp_audio_bytes + c.rtp_video_bytes + c.rtp_av1_ds_bytes) in
  let rtcp_p = f (c.rtcp_sr_sdes_pkts + c.rtcp_rr_pkts + c.rtcp_remb_pkts) in
  let rtcp_b = f (c.rtcp_sr_sdes_bytes + c.rtcp_rr_bytes + c.rtcp_remb_bytes) in
  let stun_p = f c.stun_pkts and stun_b = f c.stun_bytes in
  let total_p = rtp_p +. rtcp_p +. stun_p in
  let total_b = rtp_b +. rtcp_b +. stun_b in
  let ctrl_p = f (c.rtcp_rr_pkts + c.rtcp_remb_pkts + c.stun_pkts + c.rtp_av1_ds_pkts) in
  let ctrl_b = f (c.rtcp_rr_bytes + c.rtcp_remb_bytes + c.stun_bytes + c.rtp_av1_ds_bytes) in
  let data_p = total_p -. ctrl_p and data_b = total_b -. ctrl_b in
  let row label packets bytes =
    {
      label;
      packets;
      packet_pct = 100.0 *. packets /. total_p;
      per_sec = packets /. seconds;
      kbytes = bytes /. 1024.0;
      byte_pct = 100.0 *. bytes /. total_b;
    }
  in
  let rows =
    [
      row "RTP" rtp_p rtp_b;
      row "- Audio" (f c.rtp_audio_pkts) (f c.rtp_audio_bytes);
      row "- Video" (f c.rtp_video_pkts) (f c.rtp_video_bytes);
      row "- AV1 DS*" (f c.rtp_av1_ds_pkts) (f c.rtp_av1_ds_bytes);
      row "RTCP" rtcp_p rtcp_b;
      row "- SR/SDES" (f c.rtcp_sr_sdes_pkts) (f c.rtcp_sr_sdes_bytes);
      row "- RR*" (f c.rtcp_rr_pkts) (f c.rtcp_rr_bytes);
      row "- RR/REMB*" (f c.rtcp_remb_pkts) (f c.rtcp_remb_bytes);
      row "STUN*" stun_p stun_b;
      row "Ctrl. Plane" ctrl_p ctrl_b;
      row "Data Plane" data_p data_b;
      row "Total" total_p total_b;
    ]
  in
  {
    rows;
    data_plane_packet_fraction = data_p /. total_p;
    data_plane_byte_fraction = data_b /. total_b;
  }

let run ?quick () =
  let r = compute ?quick () in
  let table =
    Table.create ~title:"Table 1: Packets per participant sent to SFU"
      ~columns:[ "Proto./Type"; "Packets"; "Pct."; "Per sec."; "KBytes"; "Pct." ]
  in
  List.iter
    (fun row ->
      Table.add_row table
        [
          row.label;
          Table.cell_f ~decimals:0 row.packets;
          Table.cell_f row.packet_pct;
          Table.cell_f row.per_sec;
          Table.cell_f ~decimals:0 row.kbytes;
          Table.cell_f row.byte_pct;
        ])
    r.rows;
  Table.print table;
  Printf.printf "Data plane handles %.2f%% of packets and %.2f%% of bytes (paper: 96.46%% / 99.65%%)\n\n"
    (100.0 *. r.data_plane_packet_fraction)
    (100.0 *. r.data_plane_byte_fraction)
