(** Fig. 17 — performance of the replication-tree construction designs.

    Meetings supported per design (two-party unicast, NRA, RA-R, RA-SR)
    with all participants sending, alongside the stream-tracker memory
    limits for S-LM and S-LR and the 32-core software line. The system's
    capacity at any point is the minimum of the applicable lines; the
    figure shows where each hardware constraint binds. *)

type point = {
  participants : int;
  nra : int;
  ra_r : int;
  ra_sr : int;
  tracker_slm : int;
  tracker_slr : int;
  software : int;
}

type result = { two_party : int; points : point list }

val compute : ?quick:bool -> unit -> result
val run : ?quick:bool -> unit -> unit
