(** Fig. 15 — Scallop's scalability gain over a 32-core server.

    The capacity model sweeps the number of participants per meeting
    (all sending, two media types) and reports the ratio of meetings
    supported by the switch to meetings supported by the server. The blue
    band of the paper is bounded below by the most constrained
    configuration (RA-SR trees with S-LR's memory footprint) and above by
    the least constrained (NRA with S-LM); two-party meetings get their
    dedicated unicast fast path. The paper's headline: 7–210x. *)

type point = { participants : int; gain_low : float; gain_high : float }

type result = {
  two_party_gain : float;
  points : point list;
  min_gain : float;
  max_gain : float;
}

val compute : ?quick:bool -> unit -> result
val run : ?quick:bool -> unit -> unit
