module Table = Scallop_util.Table
module Timeseries = Scallop_util.Timeseries
module Engine = Netsim.Engine

type sample = {
  participants : int;
  jitter_p95_ms : float;
  mean_fps : float;
  cpu_utilization : float;
}

type result = {
  series : sample list;
  saturation_participants : int option;
  fps_half_participants : int option;
  mouth_to_ear_p95_ms : float;  (** across meeting-1 receivers, whole run *)
}

let meeting_size = 10

(* One pinned core; the per-packet cost is scaled to the reduced media
   rate so saturation lands near the paper's ~80 participants (the
   protocol overhead that grows under stress — NACKs, PLIs, keyframes —
   adds to the nominal media load). *)
let pinned_core =
  {
    Netsim.Cpu_queue.cores = 1;
    service_ns_per_packet = 32_000;
    service_ns_per_byte = 0;
    spike_probability = 0.01;
    spike_mu = log 200_000.0;
    spike_sigma = 0.8;
    max_queue_delay_ns = 400_000_000;
    wakeup_latency_ns = 20_000;
  }

let light_client ~ip =
  {
    (Webrtc.Client.default_config ~ip) with
    video_bitrate_bps = 250_000;
    send_audio = false;
  }

let compute ?(quick = false) () =
  let total = if quick then 100 else 150 in
  let join_interval_s = if quick then 0.5 else 1.5 in
  let settle_s = if quick then 8.0 else 30.0 in
  let stack = Common.make_software ~seed:5 ~cpu:pinned_core () in
  let meetings =
    Array.init
      ((total + meeting_size - 1) / meeting_size)
      (fun _ -> Sfu.Server.create_meeting stack.server)
  in
  let first_meeting_clients = ref [] in
  let cpu_by_second = Hashtbl.create 256 in
  let joined = ref 0 in
  Engine.every stack.s_engine ~interval:(Engine.sec join_interval_s) (fun () ->
      if !joined < total then begin
        let client =
          Common.add_client stack.s_engine stack.s_network stack.s_rng ~index:!joined
            ~config:light_client ()
        in
        let meeting = meetings.(!joined / meeting_size) in
        ignore (Sfu.Server.join stack.server ~meeting ~client ~send_media:true);
        if !joined < meeting_size then
          first_meeting_clients := client :: !first_meeting_clients;
        incr joined;
        true
      end
      else false);
  let last_busy = ref 0 in
  Engine.every stack.s_engine ~interval:(Engine.sec 1.0) (fun () ->
      let sec = Engine.now stack.s_engine / 1_000_000_000 in
      let busy = Sfu.Server.cpu_busy_ns stack.server in
      (* windowed (per-second) utilization of the pinned core *)
      Hashtbl.replace cpu_by_second sec
        (Float.min 1.0 (float_of_int (busy - !last_busy) /. 1e9));
      last_busy := busy;
      true);
  let duration = (float_of_int total *. join_interval_s) +. settle_s in
  Common.run_for stack.s_engine ~seconds:duration;
  (* meeting 1's receive quality, second by second *)
  let receivers =
    List.concat_map
      (fun client ->
        Webrtc.Client.connections client |> List.filter_map Webrtc.Client.receiver)
      !first_meeting_clients
  in
  let fps_at sec =
    let per_rx rx =
      Array.fold_left
        (fun acc (time, v) -> if time / 1_000_000_000 = sec then acc +. v else acc)
        0.0
        (Timeseries.bins (Codec.Video_receiver.fps_series rx))
    in
    match receivers with
    | [] -> 0.0
    | _ ->
        List.fold_left (fun acc rx -> acc +. per_rx rx) 0.0 receivers
        /. float_of_int (List.length receivers)
  in
  let jitter_at sec =
    List.fold_left
      (fun acc rx ->
        Array.fold_left
          (fun acc (t, v) -> if int_of_float t = sec then Float.max acc v else acc)
          acc
          (Codec.Video_receiver.jitter_percentile_series rx ~p:95.0))
      0.0 receivers
  in
  let participants_at sec =
    min total (int_of_float (float_of_int sec /. join_interval_s))
  in
  let milestones =
    List.init (total / meeting_size) (fun i -> (i + 1) * meeting_size)
  in
  let series =
    List.map
      (fun p ->
        (* sample shortly after the milestone's joins complete *)
        let sec = int_of_float (float_of_int p *. join_interval_s) + 2 in
        let sec = if p = total then sec + int_of_float settle_s - 4 else sec in
        ignore (participants_at sec);
        {
          participants = p;
          jitter_p95_ms = jitter_at sec;
          mean_fps = fps_at sec;
          cpu_utilization =
            Option.value (Hashtbl.find_opt cpu_by_second sec) ~default:0.0;
        })
      milestones
  in
  let first_where pred =
    List.find_opt pred series |> Option.map (fun s -> s.participants)
  in
  let mouth_to_ear_p95_ms =
    List.fold_left
      (fun acc rx ->
        try Float.max acc (Codec.Video_receiver.mouth_to_ear_ms rx ~p:95.0)
        with Invalid_argument _ -> acc)
      0.0 receivers
  in
  {
    series;
    saturation_participants = first_where (fun s -> s.cpu_utilization >= 0.95);
    fps_half_participants = first_where (fun s -> s.mean_fps < 15.0);
    mouth_to_ear_p95_ms;
  }

let run ?quick () =
  let r = compute ?quick () in
  let table =
    Table.create ~title:"Figs 3-4: software SFU under load (single pinned core)"
      ~columns:[ "participants"; "p95 jitter (ms)"; "mean fps"; "CPU util." ]
  in
  List.iter
    (fun s ->
      Table.add_row table
        [
          Table.cell_i s.participants;
          Table.cell_f s.jitter_p95_ms;
          Table.cell_f ~decimals:1 s.mean_fps;
          Table.cell_pct s.cpu_utilization;
        ])
    r.series;
  Table.print table;
  Printf.printf
    "CPU >=95%% first at %s participants (paper: 100%% at ~80); fps below 15 at %s (paper: drops from ~60, unusable 100-120)\n\n"
    (match r.saturation_participants with Some p -> string_of_int p | None -> "-")
    (match r.fps_half_participants with Some p -> string_of_int p | None -> "-");
  Printf.printf
    "worst p95 mouth-to-ear across meeting-1 receivers: %.0f ms (paper: tail jitter beyond 100 ms -> significant mouth-to-ear delay)\n\n"
    r.mouth_to_ear_p95_ms
