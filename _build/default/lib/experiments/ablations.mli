(** Ablation studies for the two design choices the paper argues hardest
    for — run each mechanism with its Scallop treatment and with the naive
    alternative, on otherwise identical scenarios.

    {b Feedback filter (§5.3, Fig. 8).} Scallop forwards only the
    best-performing downlink's REMB to each sender. The naive alternative
    forwards every receiver's REMB; the sender then converges to the
    lowest-bandwidth receiver, destroying quality for everyone else —
    exactly the mixed-feedback failure the paper illustrates.

    {b Sequence rewriting (§6.2, Fig. 12).} Scallop masks intentional
    gaps with the S-LM/S-LR heuristics. The naive alternative forwards
    rate-adapted streams with raw gaps; receivers read them as loss and
    generate continuous retransmission requests for packets that never
    existed. *)

type filter_result = {
  sender_bitrate_filtered : int;  (** sender's encode rate with the filter *)
  sender_bitrate_naive : int;  (** ... and with naive REMB forwarding *)
  fast_receiver_kbps_filtered : float;
      (** unconstrained receiver's receive rate with the filter *)
  fast_receiver_kbps_naive : float;
}

val filter_ablation : ?quick:bool -> unit -> filter_result

type rewrite_result = {
  nacks_with_rewrite : int;  (** NACKed sequence numbers at the reduced receiver *)
  nacks_without_rewrite : int;
  fps_with_rewrite : float;
  fps_without_rewrite : float;
}

val rewrite_ablation : ?quick:bool -> unit -> rewrite_result

val run : ?quick:bool -> unit -> unit
(** Print both ablations as tables. *)
