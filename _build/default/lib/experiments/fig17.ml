module Table = Scallop_util.Table
module Cap = Scallop.Capacity

type point = {
  participants : int;
  nra : int;
  ra_r : int;
  ra_sr : int;
  tracker_slm : int;
  tracker_slr : int;
  software : int;
}

type result = { two_party : int; points : point list }

(* Stream-tracker line in isolation: rate-adapted output streams per
   meeting at the model's adapted fraction. *)
let tracker_meetings variant ~participants =
  let p = Cap.default in
  let streams =
    p.Cap.tracker_cells / Scallop.Seq_rewrite.words_per_stream variant
  in
  let adapted =
    max 1
      (int_of_float
         (Float.round
            (p.Cap.adapted_fraction *. float_of_int (participants * (participants - 1)))))
  in
  streams / adapted

let compute ?(quick = false) () =
  let max_n = if quick then 16 else 30 in
  let two_party = Cap.meetings_supported Cap.Two_party ~participants:2 ~senders:2 () in
  let points =
    List.init (max_n - 2) (fun i ->
        let n = i + 3 in
        {
          participants = n;
          nra = Cap.meetings_supported Cap.Nra ~participants:n ~senders:n ();
          ra_r = Cap.meetings_supported Cap.Ra_r ~participants:n ~senders:n ();
          ra_sr = Cap.meetings_supported Cap.Ra_sr ~participants:n ~senders:n ();
          tracker_slm = tracker_meetings Scallop.Seq_rewrite.S_LM ~participants:n;
          tracker_slr = tracker_meetings Scallop.Seq_rewrite.S_LR ~participants:n;
          software =
            Sfu.Capacity.meetings_supported ~participants:n ~senders:n ~media_types:2 ();
        })
  in
  { two_party; points }

let run ?quick () =
  let r = compute ?quick () in
  let table =
    Table.create ~title:"Fig 17: capacity per replication-tree design (all senders)"
      ~columns:[ "N"; "NRA"; "RA-R"; "RA-SR"; "S-LM mem"; "S-LR mem"; "32-core server" ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [
          Table.cell_i p.participants;
          Table.cell_i p.nra;
          Table.cell_i p.ra_r;
          Table.cell_i p.ra_sr;
          Table.cell_i p.tracker_slm;
          Table.cell_i p.tracker_slr;
          Table.cell_i p.software;
        ])
    r.points;
  Table.print table;
  Printf.printf
    "two-party fast path: %d meetings (paper: 533K vs 4.8K software); \
     anchors: NRA 3p=%d (paper 128K), RA-R 3p=%d (paper 42.7K), RA-SR 10p=%d (paper 4.3K)\n\n"
    r.two_party
    (List.nth r.points 0).nra (List.nth r.points 0).ra_r
    (match List.find_opt (fun p -> p.participants = 10) r.points with
    | Some p -> p.ra_sr
    | None -> -1)
