(** Table 2 (Appendix C) — packet-capture summary.

    The paper summarizes a 12-hour campus capture: total Zoom packets,
    flows, bytes and RTP media streams. We regenerate the same summary by
    running a batch of Scallop meetings and capturing at the switch; the
    absolute scale is set by the simulated duration and meeting count,
    the per-stream/per-flow structure by the protocol stack itself. *)

type result = {
  duration_s : float;
  packets : int;
  packets_per_s : float;
  flows : int;  (** distinct 5-tuples seen at the switch *)
  megabytes : float;
  mbit_per_s : float;
  rtp_streams : int;  (** distinct media SSRCs *)
}

val compute : ?quick:bool -> unit -> result
val run : ?quick:bool -> unit -> unit
