module Stats = Scallop_util.Stats
module Table = Scallop_util.Table
module Link = Netsim.Link

type dist = { median_us : float; p90_us : float; p99_us : float; samples : int }

type result = {
  scallop : dist;
  software : dist;
  scallop_samples : Stats.Samples.t;
  software_samples : Stats.Samples.t;
  median_ratio : float;
  p99_ratio : float;
}

(* Testbed-style links: same rack, 2 µs propagation, heavy-tailed end-host
   receive jitter (median 2 µs, long tail) shared by both setups. *)
let testbed_link =
  {
    Link.default with
    rate_bps = 1e9;
    propagation_ns = 2_000;
    jitter = Link.Heavy_tail { median_ns = 1_000.0; sigma = 1.1 };
  }

(* The Tofino's ports run at 100 Gb/s — serialization there is negligible,
   which is part of the hardware win; the software SFU sits behind the
   same 1 Gb/s NIC as the clients. *)
let tofino_link =
  { testbed_link with rate_bps = 100e9; propagation_ns = 1_000; jitter = Link.No_jitter }

(* Software SFU per-leg costs: ~7 µs of work plus a ~250 µs event-loop /
   scheduler / socket wakeup per leg, occasional context-switch spikes —
   a userspace SFU worker (DESIGN.md §4 documents the calibration). *)
let software_cpu =
  {
    Netsim.Cpu_queue.cores = 4;
    service_ns_per_packet = 7_000;
    service_ns_per_byte = 0;
    spike_probability = 0.015;
    spike_mu = log 50_000.0;
    spike_sigma = 0.8;
    max_queue_delay_ns = 500_000_000;
    wakeup_latency_ns = 250_000;
  }

(* One-way media delay measured frame-by-frame: first transmission of an
   (ssrc, rtp-timestamp) pair at the sender vs its first arrival at the
   receiver. Matching on the RTP timestamp survives the software SFU's
   sequence-number re-origination. *)
let measure engine clients =
  let samples = Stats.Samples.create () in
  let tx = Hashtbl.create 4096 in
  let matched = Hashtbl.create 4096 in
  let key buf =
    match Rtp.Demux.classify buf with
    | Rtp.Demux.Rtp_media -> (
        match Rtp.Packet.parse buf with
        | exception Rtp.Wire.Parse_error _ -> None
        | pkt -> Some (pkt.Rtp.Packet.ssrc, pkt.Rtp.Packet.timestamp))
    | _ -> None
  in
  ignore engine;
  List.iter
    (fun client ->
      Webrtc.Client.set_tx_hook client (fun ~time_ns dgram ->
          match key dgram.Netsim.Dgram.payload with
          | Some k ->
              if not (Hashtbl.mem tx k || Hashtbl.mem matched k) then
                Hashtbl.replace tx k time_ns
          | None -> ());
      Webrtc.Client.set_rx_hook client (fun ~time_ns dgram ->
          match key dgram.Netsim.Dgram.payload with
          | Some k -> (
              match Hashtbl.find_opt tx k with
              | Some sent ->
                  Hashtbl.remove tx k;
                  Hashtbl.replace matched k ();
                  if Hashtbl.length matched > 200_000 then Hashtbl.reset matched;
                  Stats.Samples.observe samples (float_of_int (time_ns - sent))
              | None -> ())
          | None -> ()))
    clients;
  samples

let dist_of samples =
  {
    median_us = Stats.Samples.percentile samples 50.0 /. 1_000.0;
    p90_us = Stats.Samples.percentile samples 90.0 /. 1_000.0;
    p99_us = Stats.Samples.percentile samples 99.0 /. 1_000.0;
    samples = Stats.Samples.count samples;
  }

let compute ?(quick = false) () =
  let seconds = if quick then 20.0 else 60.0 in
  (* Scallop *)
  let st = Common.make_scallop ~seed:31 ~switch_link:tofino_link () in
  let _, members =
    Common.scallop_meeting st ~participants:2 ~senders:2 ~uplink:testbed_link
      ~downlink:testbed_link ()
  in
  let samples_scallop = measure st.engine (List.map snd members) in
  Common.run_for st.engine ~seconds;
  (* Software *)
  let sw = Common.make_software ~seed:31 ~cpu:software_cpu ~switch_link:testbed_link () in
  let _, smembers =
    Common.software_meeting sw ~participants:2 ~senders:2 ~uplink:testbed_link
      ~downlink:testbed_link ()
  in
  let samples_software = measure sw.s_engine (List.map snd smembers) in
  Common.run_for sw.s_engine ~seconds;
  let scallop = dist_of samples_scallop and software = dist_of samples_software in
  {
    scallop;
    software;
    scallop_samples = samples_scallop;
    software_samples = samples_software;
    median_ratio = software.median_us /. scallop.median_us;
    p99_ratio = software.p99_us /. scallop.p99_us;
  }

let run ?quick () =
  let r = compute ?quick () in
  let table =
    Table.create ~title:"Fig 19: per-packet one-way forwarding latency (us)"
      ~columns:[ "SFU"; "median"; "p90"; "p99"; "samples" ]
  in
  let row name d =
    Table.add_row table
      [
        name;
        Table.cell_f d.median_us;
        Table.cell_f d.p90_us;
        Table.cell_f d.p99_us;
        Table.cell_i d.samples;
      ]
  in
  row "Scallop (Tofino2)" r.scallop;
  row "Software (32-core)" r.software;
  Table.print table;
  (* the paper's figure is a CDF; print a few points of each curve *)
  let cdf_table =
    Table.create ~title:"Fig 19 CDF points" ~columns:[ "fraction"; "Scallop (us)"; "software (us)" ]
  in
  List.iter
    (fun p ->
      cdf_table |> fun tbl ->
      Table.add_row tbl
        [
          Table.cell_f p;
          Table.cell_f (Stats.Samples.percentile r.scallop_samples (100.0 *. p) /. 1000.0);
          Table.cell_f (Stats.Samples.percentile r.software_samples (100.0 *. p) /. 1000.0);
        ])
    [ 0.10; 0.25; 0.50; 0.75; 0.90; 0.99 ];
  Table.print cdf_table;
  Printf.printf "median ratio %.1fx (paper: 26.8x), p99 ratio %.1fx (paper: 8.5x)\n\n"
    r.median_ratio r.p99_ratio
