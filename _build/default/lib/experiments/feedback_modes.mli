(** §5.2 design-choice quantification: receiver-driven REMB vs
    sender-driven TWCC feedback.

    The paper adopts REMB because its frequency tracks link-capacity
    changes, while TWCC emits one feedback packet per 10–20 media packets
    — far too much load for the switch CPU. This experiment runs the same
    three-party meeting under both modes and measures what actually
    reaches the switch agent. *)

type result = {
  remb_cpu_pps : float;  (** CPU-port packets/s at the agent, REMB mode *)
  twcc_cpu_pps : float;
  remb_cpu_kbps : float;
  twcc_cpu_kbps : float;
  load_ratio : float;  (** twcc / remb in packets *)
}

val compute : ?quick:bool -> unit -> result
val run : ?quick:bool -> unit -> unit
