module Rng = Scallop_util.Rng
module Table = Scallop_util.Table
module Sr = Scallop.Seq_rewrite
module Dd = Av1.Dd

type point = {
  loss : float;
  overhead_slr : float;
  overhead_slm : float;
  overhead_slr_bursty : float;
  duplicates : int;
}
type result = { points : point list }

type packet = {
  seq : int;  (** unwrapped *)
  frame : int;  (** unwrapped *)
  sof : bool;
  eof : bool;
  suppressed : bool;  (** the SFU's 15 fps cadence drops this frame *)
}

(* Packets per frame loosely follow the codec's layer weights. *)
let packets_in_frame rng frame =
  let base = match frame land 3 with 0 -> 9 | 2 -> 7 | _ -> 5 in
  max 1 (base + Rng.int rng 5 - 2)

let generate rng ~frames =
  let packets = ref [] in
  let seq = ref 0 in
  for frame = 0 to frames - 1 do
    let n = packets_in_frame rng frame in
    let suppressed = Sr.suppressed_by_cadence Dd.DT_15fps frame in
    for i = 0 to n - 1 do
      packets :=
        { seq = !seq; frame; sof = i = 0; eof = i = n - 1; suppressed } :: !packets;
      incr seq
    done
  done;
  List.rev !packets

(* The lossy, reordering uplink between the sender and the SFU. [burst]
   switches from iid loss to a two-state Gilbert-Elliott chain with the
   same average rate: lossless good state, 80%-loss bad state, mean burst
   length of five packets. *)
let wire rng ?(burst = false) ~loss ~reorder packets =
  let surviving =
    if not burst then List.filter (fun _ -> not (Rng.bernoulli rng loss)) packets
    else begin
      let loss_bad = 0.8 in
      let p_bad_to_good = 0.2 in
      let stationary_bad = Float.min 0.95 (loss /. loss_bad) in
      let p_good_to_bad =
        stationary_bad *. p_bad_to_good /. Float.max 0.01 (1.0 -. stationary_bad)
      in
      let in_bad = ref false in
      List.filter
        (fun _ ->
          if !in_bad then begin
            if Rng.bernoulli rng p_bad_to_good then in_bad := false
          end
          else if Rng.bernoulli rng p_good_to_bad then in_bad := true;
          not (!in_bad && Rng.bernoulli rng loss_bad))
        packets
    end
  in
  let keyed =
    List.mapi
      (fun i p ->
        let displacement = if Rng.bernoulli rng reorder then 1 + Rng.int rng 4 else 0 in
        (i + displacement, i, p))
      surviving
  in
  List.sort compare keyed |> List.map (fun (_, _, p) -> p)

(* Drive one heuristic over the arrival stream, scoring each decision
   against ground truth:

   - a gap the heuristic leaves beyond the genuinely lost kept packets
     makes the receiver NACK sequence numbers that were intentional
     suppression (spurious retransmission requests);
   - a gap the heuristic masks beyond the genuinely suppressed packets
     hides real loss, so those packets can never be recovered by NACK
     (they eventually cost a retransmission-equivalent recovery);
   - a surviving kept packet the heuristic drops also surfaces as a
     receiver gap.

   Ground truth comes from [suppressed_at] (per original sequence number)
   and the set of sequence numbers that actually arrived. *)
let run_heuristic variant arrivals ~suppressed_at ~arrived =
  let rw = Sr.create variant ~target:Dd.DT_15fps in
  let seen = Hashtbl.create 4096 in
  let forwarded = ref 0 in
  let duplicates = ref 0 in
  let spurious = ref 0 in
  let masked_wrong = ref 0 in
  let mirror_last = ref None in
  List.iter
    (fun p ->
      if not p.suppressed then begin
        let off0 = Sr.offset rw in
        let action =
          Sr.on_packet rw ~seq:(p.seq land 0xFFFF) ~frame:(p.frame land 0xFFFF)
            ~start_of_frame:p.sof ~end_of_frame:p.eof
        in
        let off1 = Sr.offset rw in
        let m = off1 - off0 in
        (match !mirror_last with
        | Some last when p.seq > last + 1 ->
            (* gap in original space: classify its members *)
            let gap = p.seq - last - 1 in
            let s = ref 0 in
            for q = last + 1 to p.seq - 1 do
              if suppressed_at q then incr s
            done;
            let lost_kept =
              (* kept packets in the gap that never arrived *)
              let missing = ref 0 in
              for q = last + 1 to p.seq - 1 do
                if (not (suppressed_at q)) && not (Hashtbl.mem arrived q) then incr missing
              done;
              !missing
            in
            ignore gap;
            let left_unmasked = gap - m in
            spurious := !spurious + max 0 (left_unmasked - lost_kept);
            masked_wrong := !masked_wrong + max 0 (m - !s)
        | _ -> ());
        (match !mirror_last with
        | Some last when p.seq <= last -> ()
        | _ -> mirror_last := Some p.seq);
        (match !mirror_last with
        | Some last when p.seq > last -> mirror_last := Some p.seq
        | _ -> ());
        match action with
        | Sr.Drop ->
            (* an arrived kept packet silently dropped becomes a receiver
               gap unless its slot was already masked away *)
            incr spurious
        | Sr.Forward out ->
            incr forwarded;
            (match Hashtbl.find_opt seen out with
            | Some original when original <> p.seq -> incr duplicates
            | Some _ -> ()
            | None -> Hashtbl.replace seen out p.seq)
      end)
    arrivals;
  ( float_of_int (!spurious + !masked_wrong) /. float_of_int (max 1 !forwarded),
    !duplicates )

let losses = [ 0.0; 0.02; 0.05; 0.1; 0.15; 0.2; 0.3; 0.4 ]

let compute ?(quick = false) ?(reorder = 0.01) () =
  let frames = if quick then 1_200 else 6_000 in
  let points =
    List.map
      (fun loss ->
        let rng = Rng.create (42 + int_of_float (loss *. 1000.0)) in
        let packets = generate rng ~frames in
        let suppressed = Array.make (List.length packets) false in
        List.iter (fun p -> suppressed.(p.seq) <- p.suppressed) packets;
        let suppressed_at q = q >= 0 && q < Array.length suppressed && suppressed.(q) in
        let score ?burst variant =
          let arrivals = wire rng ?burst ~loss ~reorder packets in
          let arrived = Hashtbl.create 8192 in
          List.iter (fun p -> Hashtbl.replace arrived p.seq ()) arrivals;
          run_heuristic variant arrivals ~suppressed_at ~arrived
        in
        let o_slr, d1 = score Sr.S_LR in
        let o_slm, d2 = score Sr.S_LM in
        let o_bursty, d3 = score ~burst:true Sr.S_LR in
        {
          loss;
          overhead_slr = o_slr;
          overhead_slm = o_slm;
          overhead_slr_bursty = o_bursty;
          duplicates = d1 + d2 + d3;
        })
      losses
  in
  { points }

let run ?quick () =
  let r = compute ?quick () in
  let table =
    Table.create ~title:"Fig 18: retransmission overhead of sequence rewriting"
      ~columns:[ "loss"; "S-LR overhead"; "S-LM overhead"; "S-LR (bursty loss)"; "duplicates" ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [
          Table.cell_pct p.loss;
          Table.cell_pct p.overhead_slr;
          Table.cell_pct p.overhead_slm;
          Table.cell_pct p.overhead_slr_bursty;
          Table.cell_i p.duplicates;
        ])
    r.points;
  Table.print table;
  print_string "paper (S-LR): <5% at 10% loss, ~7.5% at 20%, <20% at 40%; duplicates must be 0\n\n"
