(** Registry of every paper artefact reproduction, keyed by the experiment
    ids used in DESIGN.md's experiment index. *)

type entry = {
  id : string;  (** e.g. "fig14", "tab1" *)
  title : string;
  paper_claim : string;
  run : ?quick:bool -> unit -> unit;
}

val all : entry list
val find : string -> entry option
val run_all : ?quick:bool -> unit -> unit
