(** Fig. 19 — SFU forwarding latency.

    Two participants in a call, connected either through Scallop's data
    plane or through the software SFU. Every RTP media packet is
    timestamped at the sending client and at the receiving client; the
    difference, minus nothing (the network path is identical in both
    setups), is dominated by SFU residence time. The paper reports a
    26.8x lower median and 8.5x lower 99th percentile for Scallop. *)

type dist = { median_us : float; p90_us : float; p99_us : float; samples : int }

type result = {
  scallop : dist;
  software : dist;
  scallop_samples : Scallop_util.Stats.Samples.t;
  software_samples : Scallop_util.Stats.Samples.t;
  median_ratio : float;
  p99_ratio : float;
}

val compute : ?quick:bool -> unit -> result
val run : ?quick:bool -> unit -> unit
