(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (via the Experiments registry), then runs Bechamel
   microbenchmarks of the data-plane hot paths.

   Usage: main.exe [--quick] [--no-micro] [experiment ids...] *)

let microbench () =
  print_endline "== Microbenchmarks: data-plane hot paths (model code) ==";
  let rng = Scallop_util.Rng.create 99 in
  let video_pkt =
    let src = Codec.Video_source.create rng (Codec.Video_source.default_config ~ssrc:7) in
    let frame = Codec.Video_source.next_frame src ~time_ns:0 in
    List.hd frame.Codec.Video_source.packets
  in
  let video_buf = Rtp.Packet.serialize video_pkt in
  let dd_buf = Option.get (Rtp.Packet.find_extension video_pkt Av1.Dd.extension_id) in
  let remb_buf =
    Rtp.Rtcp.serialize_compound
      [
        Rtp.Rtcp.Receiver_report { ssrc = 7; reports = [] };
        Rtp.Rtcp.Remb { sender_ssrc = 7; bitrate_bps = 2_000_000; ssrcs = [ 7 ] };
      ]
  in
  (* a populated PRE: one NRA-style tree with 10 participants *)
  let pre = Tofino.Pre.create () in
  let nodes =
    List.init 10 (fun i ->
        Tofino.Pre.create_l1_node pre ~rid:i ~l1_xid:1 ~prune_enabled:true ~ports:[ i ] ())
  in
  Tofino.Pre.create_tree pre ~mgid:1 ~nodes;
  Tofino.Pre.set_l2_xid_ports pre ~xid:3 ~ports:[ 3 ];
  let rewriter = Scallop.Seq_rewrite.create Scallop.Seq_rewrite.S_LR ~target:Av1.Dd.DT_15fps in
  let seq = ref 0 and frame = ref 0 in
  let stage = Bechamel.Staged.stage in
  let tests =
    Bechamel.Test.make_grouped ~name:"dataplane"
      [
        Bechamel.Test.make ~name:"rtp_parse" (stage (fun () -> ignore (Rtp.Packet.parse video_buf)));
        Bechamel.Test.make ~name:"rtp_serialize" (stage (fun () -> ignore (Rtp.Packet.serialize video_pkt)));
        Bechamel.Test.make ~name:"av1_dd_parse" (stage (fun () -> ignore (Av1.Dd.parse dd_buf)));
        Bechamel.Test.make ~name:"demux_classify" (stage (fun () -> ignore (Rtp.Demux.classify video_buf)));
        Bechamel.Test.make ~name:"rtcp_parse_remb" (stage (fun () -> ignore (Rtp.Rtcp.parse_compound remb_buf)));
        Bechamel.Test.make ~name:"pre_replicate_10way"
          (stage (fun () -> ignore (Tofino.Pre.replicate pre ~mgid:1 ~l1_xid:2 ~rid:3 ~l2_xid:3)));
        Bechamel.Test.make ~name:"seq_rewrite_slr"
          (stage (fun () ->
               seq := (!seq + 1) land 0xFFFF;
               if !seq land 7 = 0 then frame := (!frame + 1) land 0xFFFF;
               ignore
                 (Scallop.Seq_rewrite.on_packet rewriter ~seq:!seq ~frame:!frame
                    ~start_of_frame:(!seq land 7 = 1) ~end_of_frame:(!seq land 7 = 0))));
      ]
  in
  let instance = Bechamel.Toolkit.Instance.monotonic_clock in
  let cfg = Bechamel.Benchmark.cfg ~limit:1000 ~quota:(Bechamel.Time.second 0.5) () in
  let raw = Bechamel.Benchmark.all cfg [ instance ] tests in
  let analysis =
    Bechamel.Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Bechamel.Measure.run |]
  in
  let table =
    Scallop_util.Table.create ~title:"nanoseconds per operation" ~columns:[ "op"; "ns/run" ]
  in
  Hashtbl.fold (fun name r acc -> (name, r) :: acc) raw []
  |> List.sort compare
  |> List.iter (fun (name, r) ->
         let est = Bechamel.Analyze.one analysis instance r in
         match Bechamel.Analyze.OLS.estimates est with
         | Some (ns :: _) -> Scallop_util.Table.add_row table [ name; Printf.sprintf "%.1f" ns ]
         | Some [] | None -> ());
  Scallop_util.Table.print table

(* --csv <dir>: every printed table is also written as <dir>/<title>.csv *)
let install_csv_sink dir =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let sanitize title =
    String.map (fun c -> if ('a' <= Char.lowercase_ascii c && Char.lowercase_ascii c <= 'z') || ('0' <= c && c <= '9') then c else '_') title
  in
  Scallop_util.Table.set_csv_sink
    (Some
       (fun ~title ~csv ->
         let path = Filename.concat dir (sanitize title ^ ".csv") in
         let oc = open_out path in
         output_string oc csv;
         close_out oc))

let rec find_csv_dir = function
  | "--csv" :: dir :: _ -> Some dir
  | _ :: rest -> find_csv_dir rest
  | [] -> None

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let no_micro = List.mem "--no-micro" args in
  Option.iter install_csv_sink (find_csv_dir args);
  let ids =
    let rec strip = function
      | "--csv" :: _ :: rest -> strip rest
      | a :: rest when String.length a >= 2 && String.sub a 0 2 = "--" -> strip rest
      | a :: rest -> a :: strip rest
      | [] -> []
    in
    strip args
  in
  print_endline "=== Scallop paper reproduction: all tables and figures ===";
  Printf.printf "mode: %s\n\n" (if quick then "quick" else "full");
  (match ids with
  | [] -> Experiments.Registry.run_all ~quick ()
  | ids ->
      List.iter
        (fun id ->
          match Experiments.Registry.find id with
          | Some e -> e.run ~quick ()
          | None -> Printf.printf "unknown experiment id %S\n" id)
        ids);
  if not no_micro then microbench ()
