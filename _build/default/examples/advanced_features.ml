(* The extensions beyond the paper's evaluation, in one tour:

   - screen sharing (the controller's third trigger, 4): a second stream
     bundle appears mid-call and disappears again;
   - simulcast (3): a sender ships three renditions; the switch splices
     each receiver onto the rendition its downlink affords;
   - header authentication (8): per-replica RTP-header HMACs.

     dune exec examples/advanced_features.exe *)

module Addr = Scallop_util.Addr
module Rng = Scallop_util.Rng
module Engine = Netsim.Engine
module Network = Netsim.Network
module Link = Netsim.Link

let () =
  let engine = Engine.create () in
  let rng = Rng.create 99 in
  let network = Network.create engine (Rng.split rng) in
  let switch_ip = Addr.ip_of_string "10.0.0.1" in
  let port = { Link.default with rate_bps = 100e9; propagation_ns = 1_000 } in
  Network.add_host network ~ip:switch_ip ~uplink:port ~downlink:port ();
  (* 8 extension: authenticate every replica's RTP header *)
  let dp = Scallop.Dataplane.create engine network ~ip:switch_ip ~header_auth:true () in
  let agent = Scallop.Switch_agent.create engine dp () in
  let controller =
    Scallop.Controller.create engine network (Rng.split rng) ~agents:[ (agent, dp) ] ()
  in
  let meeting = Scallop.Controller.create_meeting controller in
  let join ?simulcast i ~downlink =
    let ip = Addr.ip_of_string (Printf.sprintf "10.0.8.%d" (i + 1)) in
    Network.add_host network ~ip ~downlink ();
    let client =
      Webrtc.Client.create engine network (Rng.split rng) (Webrtc.Client.default_config ~ip)
    in
    Scallop.Controller.join ?simulcast controller meeting client ~send_media:true
  in
  (* a simulcast sender, a healthy receiver, and a weak receiver *)
  let presenter = join ~simulcast:true 0 ~downlink:Link.default in
  let healthy = join 1 ~downlink:Link.default in
  let weak = join 2 ~downlink:{ Link.default with rate_bps = 1.2e6; queue_bytes = 1_000_000 } in
  Engine.run engine ~until:(Engine.sec 10.0);

  (* mid-call, the presenter starts sharing a screen *)
  Scallop.Controller.start_screen_share controller presenter;
  Engine.run engine ~until:(Engine.sec 20.0);

  let video_of pid ~from =
    Scallop.Controller.recv_connection controller pid ~from
    |> Option.get |> Webrtc.Client.receiver |> Option.get
  in
  let kbps rx seconds = float_of_int (Codec.Video_receiver.bytes_received rx * 8) /. 1000.0 /. seconds in
  Printf.printf "simulcast: healthy receiver %.0f kb/s, weak receiver %.0f kb/s — same 30 fps, 0 freezes\n"
    (kbps (video_of healthy ~from:presenter) 20.0)
    (kbps (video_of weak ~from:presenter) 20.0);
  (match Scallop.Controller.screen_connection controller healthy ~from:presenter with
  | Some conn ->
      let rx = Option.get (Webrtc.Client.receiver conn) in
      Printf.printf "screen share: %d frames decoded in 10 s alongside the camera stream\n"
        (Codec.Video_receiver.frames_decoded rx)
  | None -> print_endline "screen share missing!");
  Scallop.Controller.stop_screen_share controller presenter;
  Engine.run engine ~until:(Engine.sec 22.0);
  Printf.printf "header auth: %d replica headers HMAC'd on the way out\n"
    (Scallop.Dataplane.headers_authenticated dp)
