examples/cascade.ml: Codec Netsim Option Printf Scallop Scallop_util Webrtc
