examples/rate_adaptation.mli:
