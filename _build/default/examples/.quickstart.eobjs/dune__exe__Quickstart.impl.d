examples/quickstart.ml: Codec List Netsim Option Printf Scallop Scallop_util Webrtc
