examples/two_party.mli:
