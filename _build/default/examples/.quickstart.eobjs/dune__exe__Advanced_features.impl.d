examples/advanced_features.ml: Codec Netsim Option Printf Scallop Scallop_util Webrtc
