examples/campus_scale.ml: Array Float Printf Scallop Scallop_util Sfu Trace
