examples/advanced_features.mli:
