examples/rate_adaptation.ml: Av1 Codec Experiments List Netsim Option Printf Scallop Webrtc
