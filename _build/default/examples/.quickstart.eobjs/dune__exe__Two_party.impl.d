examples/two_party.ml: Experiments Netsim Printf Scallop Sfu Tofino
