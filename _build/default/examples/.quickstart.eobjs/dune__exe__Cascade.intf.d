examples/cascade.mli:
