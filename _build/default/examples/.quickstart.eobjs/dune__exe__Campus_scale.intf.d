examples/campus_scale.mli:
