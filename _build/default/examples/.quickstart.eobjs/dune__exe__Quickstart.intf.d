examples/quickstart.mli:
