(* Campus-scale what-if: replay the synthetic campus workload (Appendix B)
   against the capacity models. How many Scallop switches vs 32-core
   servers would the busiest minute of the two weeks need, and how many
   bytes would reach software in each architecture?

     dune exec examples/campus_scale.exe *)

module Rng = Scallop_util.Rng
module Timeseries = Scallop_util.Timeseries

let () =
  let dataset = Trace.Dataset.generate (Rng.create 123) () in
  Printf.printf "synthetic campus dataset: %d meetings over %d days (%.0f%% two-party)\n\n"
    (Array.length dataset.meetings)
    (dataset.horizon_ns / (24 * 3_600_000_000_000))
    (100.0 *. Trace.Dataset.two_party_fraction dataset);

  (* the busiest minute *)
  let meetings_ts, participants_ts =
    Trace.Dataset.concurrency_series dataset ~bin_ns:60_000_000_000
  in
  let peak ts = Timeseries.fold ts ~init:0.0 ~f:(fun acc _ v -> Float.max acc v) in
  let peak_meetings = peak meetings_ts and peak_participants = peak participants_ts in
  Printf.printf "busiest minute: %.0f concurrent meetings, %.0f participants\n"
    peak_meetings peak_participants;

  (* capacity: assume the average meeting shape (4 participants, all send) *)
  let scallop_cap =
    Scallop.Capacity.meetings_supported Scallop.Capacity.Nra ~participants:4 ~senders:4 ()
  in
  let server_cap = Sfu.Capacity.meetings_supported ~participants:4 ~senders:4 ~media_types:2 () in
  let need cap = int_of_float (Float.ceil (peak_meetings /. float_of_int cap)) in
  Printf.printf
    "to host the peak: %d Scallop switch(es) (%d meetings each) vs %d server(s) (%d meetings each)\n\n"
    (need scallop_cap) scallop_cap (need server_cap) server_cap;

  (* the byte-rate story of Fig. 22 *)
  let software, agent = Trace.Dataset.byte_rate_series dataset ~bin_ns:300_000_000_000 in
  let peak_rate ts =
    Array.fold_left
      (fun acc (_, v) -> Float.max acc v)
      0.0
      (Timeseries.rates_per_second ts)
    *. 8.0 /. 1e6
  in
  Printf.printf
    "peak software-SFU load: %.0f Mb/s of media; Scallop's switch agent would see %.1f Mb/s\n"
    (peak_rate software) (peak_rate agent)
