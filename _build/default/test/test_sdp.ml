(* SDP offer/answer and candidate-rewriting tests (paper §5.1). *)

module Addr = Scallop_util.Addr

let addr = Addr.of_string "192.168.1.10:5000"
let sfu = Addr.of_string "10.0.0.1:40000"

let offer ?(direction = Sdp.Sendrecv) () =
  {
    Sdp.session_id = 12345;
    origin_addr = Addr.v addr.Addr.ip 0;
    ice_ufrag = "uf01";
    ice_pwd = "pw0123";
    medias =
      [
        Sdp.make_media ~direction ~extmaps:[ (1, "urn:av1:dependency-descriptor") ]
          ~svc_mode:(Some "L1T3") ~kind:Sdp.Video ~mid:"0" ~payload_type:96 ~codec:"AV1"
          ~clock_rate:90000 ~ssrc:1111 ~cname:"alice" ~candidates:[ Sdp.host_candidate addr ] ();
        Sdp.make_media ~direction ~kind:Sdp.Audio ~mid:"1" ~payload_type:111 ~codec:"opus"
          ~clock_rate:48000 ~ssrc:2222 ~cname:"alice" ~candidates:[ Sdp.host_candidate addr ] ();
      ];
  }

let roundtrip () =
  let o = offer () in
  Alcotest.(check bool) "to_string/of_string" true (Sdp.equal o (Sdp.of_string (Sdp.to_string o)))

let fields_preserved () =
  let o = Sdp.of_string (Sdp.to_string (offer ())) in
  Alcotest.(check int) "session id" 12345 o.Sdp.session_id;
  Alcotest.(check string) "ufrag" "uf01" o.Sdp.ice_ufrag;
  Alcotest.(check int) "two medias" 2 (List.length o.Sdp.medias);
  let v = List.hd o.Sdp.medias in
  Alcotest.(check string) "codec" "AV1" v.Sdp.codec;
  Alcotest.(check int) "clock" 90000 v.Sdp.clock_rate;
  Alcotest.(check int) "ssrc" 1111 v.Sdp.ssrc;
  Alcotest.(check (option string)) "svc" (Some "L1T3") v.Sdp.svc_mode;
  Alcotest.(check bool) "extmap" true (List.mem_assoc 1 v.Sdp.extmaps)

let candidate_rewrite () =
  (* the controller's splice: every media section ends with exactly one
     candidate pointing at the SFU *)
  let spliced = Sdp.rewrite_candidates (offer ()) sfu in
  List.iter
    (fun m ->
      match m.Sdp.candidates with
      | [ c ] -> Alcotest.(check bool) "sfu addr" true (Addr.equal c.Sdp.addr sfu)
      | _ -> Alcotest.fail "expected exactly one candidate")
    spliced.Sdp.medias

let answer_mirrors_directions () =
  let o = offer ~direction:Sdp.Sendonly () in
  let a =
    Sdp.answer ~offer:o ~session_id:777 ~origin:sfu ~ice_ufrag:"s" ~ice_pwd:"p"
      ~media_for:(fun m -> Some m)
  in
  List.iter
    (fun m -> Alcotest.(check bool) "mirrored" true (m.Sdp.direction = Sdp.Recvonly))
    a.Sdp.medias

let answer_rejects_sections () =
  let o = offer () in
  let a =
    Sdp.answer ~offer:o ~session_id:1 ~origin:sfu ~ice_ufrag:"s" ~ice_pwd:"p"
      ~media_for:(fun m -> if m.Sdp.kind = Sdp.Audio then None else Some m)
  in
  let audio = List.find (fun m -> m.Sdp.kind = Sdp.Audio) a.Sdp.medias in
  Alcotest.(check bool) "audio inactive" true (audio.Sdp.direction = Sdp.Inactive)

let answer_checks_codec () =
  let o = offer () in
  Alcotest.(check bool) "codec mismatch rejected" true
    (try
       ignore
         (Sdp.answer ~offer:o ~session_id:1 ~origin:sfu ~ice_ufrag:"s" ~ice_pwd:"p"
            ~media_for:(fun m -> Some { m with Sdp.codec = "VP8" }));
       false
     with Failure _ -> true)

let unknown_attributes_ignored () =
  let text = Sdp.to_string (offer ()) ^ "a=unknown-flag\na=key:value\n" in
  Alcotest.(check int) "still parses" 2 (List.length (Sdp.of_string text).Sdp.medias)

let malformed_rejected () =
  List.iter
    (fun text ->
      Alcotest.(check bool) ("rejects " ^ text) true
        (try
           ignore (Sdp.of_string text);
           false
         with Failure _ -> true))
    [ "nonsense"; "m=video UDP/RTP\n"; "o=- bad origin\n"; "a=mid:0\n" ]

let () =
  Alcotest.run "sdp"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick roundtrip;
          Alcotest.test_case "fields preserved" `Quick fields_preserved;
          Alcotest.test_case "unknown attributes ignored" `Quick unknown_attributes_ignored;
          Alcotest.test_case "malformed rejected" `Quick malformed_rejected;
        ] );
      ( "offer-answer",
        [
          Alcotest.test_case "candidate rewrite" `Quick candidate_rewrite;
          Alcotest.test_case "answer mirrors directions" `Quick answer_mirrors_directions;
          Alcotest.test_case "answer rejects sections" `Quick answer_rejects_sections;
          Alcotest.test_case "answer checks codec" `Quick answer_checks_codec;
        ] );
    ]
