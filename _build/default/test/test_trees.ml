(* Replication-tree design tests (paper §6.1, Fig. 11): routing metadata,
   PRE-level delivery, cross-meeting isolation, targets, migration. *)

module Trees = Scallop.Trees
module Pre = Tofino.Pre
module Dd = Av1.Dd

let setup () =
  let pre = Pre.create () in
  (pre, Trees.create pre)

(* Resolve a meeting's route for one packet into delivered participant ids. *)
let deliveries pre t handle ~sender ~layer =
  match Trees.route_media t handle ~sender ~layer with
  | Trees.No_receivers -> []
  | Trees.Unicast { receiver; _ } -> [ receiver ]
  | Trees.Replicate { mgid; l1_xid; rid; l2_xid } ->
      Pre.replicate pre ~mgid ~l1_xid ~rid ~l2_xid
      |> List.filter_map (fun (r : Pre.replica) ->
             Trees.receiver_of_replica t handle ~mgid ~rid:r.Pre.rid)
      |> List.sort compare

let participants n = List.init n (fun i -> (i, 100 + i))

(* --- two-party -------------------------------------------------------------------- *)

let two_party_unicast () =
  let _pre, t = setup () in
  let h = Trees.register_meeting t Trees.Two_party ~participants:(participants 2) ~senders:[ 0; 1 ] in
  (match Trees.route_media t h ~sender:0 ~layer:Dd.T0 with
  | Trees.Unicast { receiver; port } ->
      Alcotest.(check int) "peer" 1 receiver;
      Alcotest.(check int) "port" 101 port
  | _ -> Alcotest.fail "expected unicast");
  match Trees.route_media t h ~sender:1 ~layer:Dd.T2 with
  | Trees.Unicast { receiver; _ } -> Alcotest.(check int) "reverse" 0 receiver
  | _ -> Alcotest.fail "expected unicast"

let two_party_no_trees () =
  let pre, t = setup () in
  let _ = Trees.register_meeting t Trees.Two_party ~participants:(participants 2) ~senders:[ 0 ] in
  Alcotest.(check int) "no PRE trees" 0 (Pre.trees_used pre)

let two_party_size_checked () =
  let _pre, t = setup () in
  Alcotest.(check bool) "3 participants rejected" true
    (try
       ignore (Trees.register_meeting t Trees.Two_party ~participants:(participants 3) ~senders:[]);
       false
     with Invalid_argument _ -> true)

(* --- NRA ----------------------------------------------------------------------------- *)

let nra_delivers_to_others () =
  let pre, t = setup () in
  let h = Trees.register_meeting t Trees.Nra ~participants:(participants 4) ~senders:[ 0; 1; 2; 3 ] in
  Alcotest.(check (list int)) "sender 0 excluded" [ 1; 2; 3 ]
    (deliveries pre t h ~sender:0 ~layer:Dd.T0);
  Alcotest.(check (list int)) "sender 2 excluded" [ 0; 1; 3 ]
    (deliveries pre t h ~sender:2 ~layer:Dd.T2)

let nra_single_tree_for_two_meetings () =
  let pre, t = setup () in
  let _h1 = Trees.register_meeting t Trees.Nra ~participants:(participants 3) ~senders:[ 0 ] in
  let _h2 =
    Trees.register_meeting t Trees.Nra
      ~participants:[ (10, 200); (11, 201) ]
      ~senders:[ 10 ]
  in
  Alcotest.(check int) "m=2 aggregation" 1 (Pre.trees_used pre)

let nra_cross_meeting_isolation () =
  let pre, t = setup () in
  let h1 = Trees.register_meeting t Trees.Nra ~participants:(participants 3) ~senders:[ 0 ] in
  let h2 =
    Trees.register_meeting t Trees.Nra
      ~participants:[ (10, 200); (11, 201); (12, 202) ]
      ~senders:[ 10 ]
  in
  Alcotest.(check (list int)) "meeting 1 stays local" [ 1; 2 ]
    (deliveries pre t h1 ~sender:0 ~layer:Dd.T0);
  Alcotest.(check (list int)) "meeting 2 stays local" [ 11; 12 ]
    (deliveries pre t h2 ~sender:10 ~layer:Dd.T0)

let nra_all_layers_delivered () =
  let pre, t = setup () in
  let h = Trees.register_meeting t Trees.Nra ~participants:(participants 3) ~senders:[ 0 ] in
  List.iter
    (fun layer ->
      Alcotest.(check (list int)) "layer delivered" [ 1; 2 ]
        (deliveries pre t h ~sender:0 ~layer))
    [ Dd.T0; Dd.T1; Dd.T2 ]

(* --- RA-R ------------------------------------------------------------------------------ *)

let ra_r_layer_suppression () =
  let pre, t = setup () in
  let h = Trees.register_meeting t Trees.Ra_r ~participants:(participants 3) ~senders:[ 0 ] in
  Trees.set_receiver_target t h ~receiver:2 Dd.DT_7_5fps;
  Alcotest.(check (list int)) "T0 to everyone" [ 1; 2 ] (deliveries pre t h ~sender:0 ~layer:Dd.T0);
  Alcotest.(check (list int)) "T1 skips reduced" [ 1 ] (deliveries pre t h ~sender:0 ~layer:Dd.T1);
  Alcotest.(check (list int)) "T2 skips reduced" [ 1 ] (deliveries pre t h ~sender:0 ~layer:Dd.T2)

let ra_r_three_trees () =
  let pre, t = setup () in
  let _ = Trees.register_meeting t Trees.Ra_r ~participants:(participants 3) ~senders:[ 0 ] in
  Alcotest.(check int) "q trees" 3 (Pre.trees_used pre)

let ra_r_target_restore () =
  let pre, t = setup () in
  let h = Trees.register_meeting t Trees.Ra_r ~participants:(participants 3) ~senders:[ 0 ] in
  Trees.set_receiver_target t h ~receiver:1 Dd.DT_7_5fps;
  Trees.set_receiver_target t h ~receiver:1 Dd.DT_30fps;
  Alcotest.(check (list int)) "restored" [ 1; 2 ] (deliveries pre t h ~sender:0 ~layer:Dd.T2)

(* --- RA-SR ------------------------------------------------------------------------------ *)

let ra_sr_pair_targets () =
  let pre, t = setup () in
  let h = Trees.register_meeting t Trees.Ra_sr ~participants:(participants 3) ~senders:[ 0; 1 ] in
  (* receiver 2 takes full quality from sender 0 but only base from 1 *)
  Trees.set_pair_target t h ~sender:1 ~receiver:2 Dd.DT_7_5fps;
  Alcotest.(check (list int)) "sender 0 T2 reaches 2" [ 1; 2 ]
    (deliveries pre t h ~sender:0 ~layer:Dd.T2);
  Alcotest.(check (list int)) "sender 1 T2 skips 2" [ 0 ]
    (deliveries pre t h ~sender:1 ~layer:Dd.T2);
  Alcotest.(check (list int)) "sender 1 T0 reaches 2" [ 0; 2 ]
    (deliveries pre t h ~sender:1 ~layer:Dd.T0)

let ra_sr_pair_target_needs_design () =
  let _pre, t = setup () in
  let h = Trees.register_meeting t Trees.Nra ~participants:(participants 3) ~senders:[ 0 ] in
  Alcotest.(check bool) "rejected under NRA" true
    (try
       Trees.set_pair_target t h ~sender:0 ~receiver:1 Dd.DT_15fps;
       false
     with Invalid_argument _ -> true)

let ra_sr_sender_isolation () =
  (* two senders share each tree; one sender's packets must not take the
     branches of the other sender's receivers *)
  let pre, t = setup () in
  let h = Trees.register_meeting t Trees.Ra_sr ~participants:(participants 4) ~senders:[ 0; 1 ] in
  Alcotest.(check (list int)) "sender 0" [ 1; 2; 3 ] (deliveries pre t h ~sender:0 ~layer:Dd.T0);
  Alcotest.(check (list int)) "sender 1" [ 0; 2; 3 ] (deliveries pre t h ~sender:1 ~layer:Dd.T0)

(* --- membership / lifecycle ----------------------------------------------------------------- *)

let add_remove_participant () =
  let pre, t = setup () in
  let h = Trees.register_meeting t Trees.Nra ~participants:(participants 3) ~senders:[ 0 ] in
  Trees.add_participant t h (7, 107) ~sends:false;
  Alcotest.(check (list int)) "new member receives" [ 1; 2; 7 ]
    (deliveries pre t h ~sender:0 ~layer:Dd.T0);
  Trees.remove_participant t h 1;
  Alcotest.(check (list int)) "removed member gone" [ 2; 7 ]
    (deliveries pre t h ~sender:0 ~layer:Dd.T0)

let unregister_frees_trees () =
  let pre, t = setup () in
  let h1 = Trees.register_meeting t Trees.Ra_r ~participants:(participants 3) ~senders:[ 0 ] in
  let h2 =
    Trees.register_meeting t Trees.Ra_r ~participants:[ (10, 200); (11, 201) ] ~senders:[ 10 ]
  in
  Alcotest.(check int) "shared trees" 3 (Pre.trees_used pre);
  Trees.unregister_meeting t h1;
  Alcotest.(check int) "still used by second" 3 (Pre.trees_used pre);
  Trees.unregister_meeting t h2;
  Alcotest.(check int) "all freed" 0 (Pre.trees_used pre)

let migration_preserves_targets () =
  let pre, t = setup () in
  let h = Trees.register_meeting t Trees.Nra ~participants:(participants 3) ~senders:[ 0 ] in
  Trees.set_receiver_target t h ~receiver:2 Dd.DT_15fps;
  let h' = Trees.migrate t h Trees.Ra_r in
  Alcotest.(check bool) "design" true (Trees.design_of h' = Trees.Ra_r);
  Alcotest.(check (list int)) "target survived migration" [ 1 ]
    (deliveries pre t h' ~sender:0 ~layer:Dd.T2);
  Alcotest.(check (list int)) "members survived" [ 1; 2 ]
    (deliveries pre t h' ~sender:0 ~layer:Dd.T0)

let capacity_exhaustion () =
  let pre = Pre.create ~limits:{ Pre.max_trees = 2; max_l1_nodes = 1000; max_rids_per_tree = 64 } () in
  let t = Trees.create pre in
  (* RA-R needs 3 trees but only 2 exist *)
  Alcotest.(check bool) "raises Capacity" true
    (try
       ignore (Trees.register_meeting t Trees.Ra_r ~participants:(participants 3) ~senders:[ 0 ]);
       false
     with Trees.Capacity _ -> true)

(* Model-based property: under RA-R with arbitrary receiver targets, a
   packet of layer L reaches exactly the other participants whose target
   admits L. *)
let prop_ra_r_deliveries_match_model =
  QCheck.Test.make ~count:200 ~name:"RA-R deliveries = policy model"
    QCheck.(pair (int_range 2 8) (list_of_size Gen.(0 -- 8) (int_bound 2)))
    (fun (n, target_idxs) ->
      let pre, t = setup () in
      let h = Trees.register_meeting t Trees.Ra_r ~participants:(participants n) ~senders:[ 0 ] in
      let targets =
        List.mapi (fun i idx -> (i + 1, Dd.target_of_index idx))
          (List.filteri (fun i _ -> i < n - 1) target_idxs)
      in
      List.iter (fun (r, dt) -> Trees.set_receiver_target t h ~receiver:r dt) targets;
      let target_of r =
        Option.value (List.assoc_opt r targets) ~default:Dd.DT_30fps
      in
      List.for_all
        (fun layer ->
          let expected =
            List.init (n - 1) (fun i -> i + 1)
            |> List.filter (fun r -> Dd.target_includes (target_of r) layer)
          in
          deliveries pre t h ~sender:0 ~layer = expected)
        [ Dd.T0; Dd.T1; Dd.T2 ])

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_ra_r_deliveries_match_model ]

let () =
  Alcotest.run "trees"
    [
      ( "two-party",
        [
          Alcotest.test_case "unicast" `Quick two_party_unicast;
          Alcotest.test_case "no trees" `Quick two_party_no_trees;
          Alcotest.test_case "size checked" `Quick two_party_size_checked;
        ] );
      ( "nra",
        [
          Alcotest.test_case "delivers to others" `Quick nra_delivers_to_others;
          Alcotest.test_case "m=2 aggregation" `Quick nra_single_tree_for_two_meetings;
          Alcotest.test_case "cross-meeting isolation" `Quick nra_cross_meeting_isolation;
          Alcotest.test_case "all layers delivered" `Quick nra_all_layers_delivered;
        ] );
      ( "ra-r",
        [
          Alcotest.test_case "layer suppression" `Quick ra_r_layer_suppression;
          Alcotest.test_case "three trees" `Quick ra_r_three_trees;
          Alcotest.test_case "target restore" `Quick ra_r_target_restore;
        ] );
      ( "ra-sr",
        [
          Alcotest.test_case "pair targets" `Quick ra_sr_pair_targets;
          Alcotest.test_case "needs RA-SR design" `Quick ra_sr_pair_target_needs_design;
          Alcotest.test_case "sender isolation" `Quick ra_sr_sender_isolation;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "add/remove participant" `Quick add_remove_participant;
          Alcotest.test_case "unregister frees trees" `Quick unregister_frees_trees;
          Alcotest.test_case "migration preserves targets" `Quick migration_preserves_targets;
          Alcotest.test_case "capacity exhaustion" `Quick capacity_exhaustion;
        ] );
      ("properties", qsuite);
    ]
