(* Synthetic campus-workload tests: the dataset must reproduce the
   distributional shapes the paper reports (Appendix B, Figs. 2, 20-22). *)

module Rng = Scallop_util.Rng
module D = Trace.Dataset
module Timeseries = Scallop_util.Timeseries

let dataset = lazy (D.generate (Rng.create 7) ~days:14 ~meetings:8000 ())

let two_party_share () =
  let d = Lazy.force dataset in
  let f = D.two_party_fraction d in
  Alcotest.(check bool) "about 60% (paper)" true (f > 0.55 && f < 0.65)

let meeting_count_and_horizon () =
  let d = Lazy.force dataset in
  Alcotest.(check int) "count" 8000 (Array.length d.D.meetings);
  Alcotest.(check int) "horizon" (14 * 24 * 3_600_000_000_000) d.D.horizon_ns;
  Array.iter
    (fun m ->
      Alcotest.(check bool) "within horizon" true
        (m.D.start_ns >= 0 && m.D.start_ns + m.D.duration_ns <= d.D.horizon_ns);
      Alcotest.(check bool) "size >= 2" true (m.D.size >= 2))
    d.D.meetings

let active_duty_rule () =
  let d = Lazy.force dataset in
  Array.iter
    (fun m ->
      List.iter
        (fun s -> Alcotest.(check bool) "duty >= 10%" true (s.D.duty >= 0.1))
        (D.active_sources m))
    d.D.meetings

let streams_bounded_without_screen () =
  (* without screen shares, streams <= 2 N^2 (the Fig. 2 dashed bound) *)
  let d = Lazy.force dataset in
  Array.iter
    (fun m ->
      let has_screen = List.exists (fun s -> s.D.kind = D.Screen) (D.active_sources m) in
      if not has_screen then
        Alcotest.(check bool) "within 2N^2" true (D.streams_at_sfu m <= 2 * m.D.size * m.D.size))
    d.D.meetings

let fig2_shape () =
  let d = Lazy.force dataset in
  let rows = D.fig2_rows d in
  (* 10-participant meetings approach the ~200-stream mark *)
  (match List.find_opt (fun (size, _, _, _, _) -> size = 10) rows with
  | Some (_, _, _, max_streams, bound) ->
      Alcotest.(check int) "bound" 200 bound;
      Alcotest.(check bool) "max near bound" true (max_streams > 120)
  | None -> Alcotest.fail "no 10-participant meetings generated");
  (* median grows with size *)
  let med size =
    List.find_opt (fun (s, _, _, _, _) -> s = size) rows
    |> Option.map (fun (_, _, m, _, _) -> m)
  in
  match (med 5, med 20) with
  | Some m5, Some m20 -> Alcotest.(check bool) "monotone growth" true (m20 > m5)
  | _ -> Alcotest.fail "missing size buckets"

let diurnal_pattern () =
  let d = Lazy.force dataset in
  let meetings_ts, participants_ts = D.concurrency_series d ~bin_ns:3_600_000_000_000 in
  let day_ns = 24 * 3_600_000_000_000 in
  let peak_for ts day =
    Timeseries.fold ts ~init:0.0 ~f:(fun acc t v ->
        if t / day_ns = day then Float.max acc v else acc)
  in
  (* day 2 is a weekday, day 5 a Saturday *)
  Alcotest.(check bool) "weekday above weekend (meetings)" true
    (peak_for meetings_ts 2 > 3.0 *. peak_for meetings_ts 5);
  Alcotest.(check bool) "participants track meetings" true
    (peak_for participants_ts 2 > peak_for meetings_ts 2)

let night_vs_day () =
  let d = Lazy.force dataset in
  let meetings_ts, _ = D.concurrency_series d ~bin_ns:3_600_000_000_000 in
  let hour_ns = 3_600_000_000_000 in
  let at_hour h =
    Timeseries.fold meetings_ts ~init:0.0 ~f:(fun acc t v ->
        let hour_of_day = t / hour_ns mod 24 in
        if hour_of_day = h && t / (24 * hour_ns) = 2 then Float.max acc v else acc)
  in
  Alcotest.(check bool) "10am much busier than 3am" true (at_hour 10 > 4.0 *. at_hour 3)

let byte_rates_split () =
  let d = Lazy.force dataset in
  let software, agent = D.byte_rate_series d ~bin_ns:300_000_000_000 in
  let peak ts =
    Array.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 (Timeseries.rates_per_second ts)
  in
  let sw = peak software and ag = peak agent in
  Alcotest.(check bool) "software carries real load" true (sw > 1e6);
  Alcotest.(check (float 1.0)) "agent share is the Table-1 byte split"
    (sw *. D.agent_byte_share) ag

let determinism () =
  let a = D.generate (Rng.create 42) ~days:3 ~meetings:500 () in
  let b = D.generate (Rng.create 42) ~days:3 ~meetings:500 () in
  Alcotest.(check bool) "same seed, same dataset" true (a = b)

let () =
  Alcotest.run "trace"
    [
      ( "dataset",
        [
          Alcotest.test_case "two-party share" `Quick two_party_share;
          Alcotest.test_case "count and horizon" `Quick meeting_count_and_horizon;
          Alcotest.test_case "active duty rule" `Quick active_duty_rule;
          Alcotest.test_case "streams bounded" `Quick streams_bounded_without_screen;
          Alcotest.test_case "fig2 shape" `Quick fig2_shape;
          Alcotest.test_case "diurnal pattern" `Quick diurnal_pattern;
          Alcotest.test_case "night vs day" `Quick night_vs_day;
          Alcotest.test_case "byte-rate split" `Quick byte_rates_split;
          Alcotest.test_case "determinism" `Quick determinism;
        ] );
    ]
