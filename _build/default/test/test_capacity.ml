(* Capacity-model invariants: the closed forms behind Figs. 15-17 must be
   internally consistent for every meeting shape. *)

module Cap = Scallop.Capacity
module Sr = Scallop.Seq_rewrite

let anchors () =
  Alcotest.(check int) "NRA 128K" 131_072
    (Cap.meetings_supported Cap.Nra ~participants:3 ~senders:3 ());
  Alcotest.(check int) "RA-R 42.7K" 43_690
    (Cap.meetings_supported Cap.Ra_r ~participants:3 ~senders:3 ());
  Alcotest.(check int) "RA-SR 10p 4.3K" 4_369
    (Cap.meetings_supported Cap.Ra_sr ~participants:10 ~senders:10 ());
  Alcotest.(check int) "two-party 533K" 524_288
    (Cap.meetings_supported Cap.Two_party ~participants:2 ~senders:2 ())

let design_ordering () =
  (* more adaptation flexibility costs capacity: NRA >= RA-R >= RA-SR *)
  for n = 3 to 30 do
    let m d = Cap.meetings_supported d ~participants:n ~senders:n () in
    if not (m Cap.Nra >= m Cap.Ra_r && m Cap.Ra_r >= m Cap.Ra_sr) then
      Alcotest.failf "ordering violated at N=%d" n
  done

let monotone_in_participants () =
  List.iter
    (fun d ->
      let prev = ref max_int in
      for n = 3 to 30 do
        let m = Cap.meetings_supported d ~participants:n ~senders:n () in
        if m > !prev then Alcotest.failf "capacity grew with N at %d" n;
        prev := m
      done)
    [ Cap.Nra; Cap.Ra_r; Cap.Ra_sr ]

let rewrite_variant_effect () =
  (* S-LM's smaller footprint can only help, never hurt *)
  for n = 3 to 30 do
    let m v = Cap.meetings_supported ~rewrite:v Cap.Ra_sr ~participants:n ~senders:n () in
    if m Sr.S_LM < m Sr.S_LR then Alcotest.failf "S-LM worse at N=%d" n
  done

let gains_always_positive () =
  for n = 3 to 30 do
    List.iter
      (fun d ->
        let g = Cap.gain_over_software d ~participants:n ~senders:n () in
        if g <= 1.0 then Alcotest.failf "no gain at N=%d" n)
      [ Cap.Nra; Cap.Ra_r; Cap.Ra_sr ]
  done

let bottleneck_names_sane () =
  let name, v = Cap.bottleneck Cap.Nra ~participants:3 ~senders:3 () in
  Alcotest.(check string) "tree-bound at small N" "PRE trees" name;
  Alcotest.(check int) "value matches" 131_072 v;
  let name10, _ = Cap.bottleneck Cap.Nra ~participants:12 ~senders:12 () in
  Alcotest.(check string) "bandwidth-bound at larger N" "switch bandwidth" name10

let fewer_senders_more_meetings () =
  for n = 4 to 20 do
    let all = Cap.meetings_supported Cap.Nra ~participants:n ~senders:n () in
    let one = Cap.meetings_supported Cap.Nra ~participants:n ~senders:1 () in
    if one < all then Alcotest.failf "one sender worse at N=%d" n
  done

let invalid_shapes_rejected () =
  Alcotest.(check bool) "senders > participants" true
    (try
       ignore (Cap.meetings_supported Cap.Nra ~participants:3 ~senders:4 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "one participant" true
    (try
       ignore (Cap.meetings_supported Cap.Nra ~participants:1 ~senders:1 ());
       false
     with Invalid_argument _ -> true)

let best_design_picks_feasible () =
  let d, v = Cap.best_design ~rate_adapted:false ~sender_specific:false ~participants:5 ~senders:5 () in
  Alcotest.(check bool) "nra for non-adapted" true (d = Cap.Nra);
  Alcotest.(check int) "capacity" (Cap.meetings_supported Cap.Nra ~participants:5 ~senders:5 ()) v;
  let d2, _ = Cap.best_design ~rate_adapted:true ~sender_specific:true ~participants:5 ~senders:5 () in
  Alcotest.(check bool) "ra-sr when sender-specific" true (d2 = Cap.Ra_sr);
  let d3, _ = Cap.best_design ~rate_adapted:true ~sender_specific:false ~participants:2 ~senders:2 () in
  Alcotest.(check bool) "two-party overrides" true (d3 = Cap.Two_party)

let prop_capacity_positive =
  QCheck.Test.make ~count:300 ~name:"capacity positive for any shape"
    QCheck.(pair (int_range 2 60) (int_range 1 60))
    (fun (n, s) ->
      let s = min s n in
      List.for_all
        (fun d -> Cap.meetings_supported d ~participants:n ~senders:s () > 0)
        (if n = 2 then [ Cap.Two_party; Cap.Nra; Cap.Ra_r; Cap.Ra_sr ]
         else [ Cap.Nra; Cap.Ra_r; Cap.Ra_sr ]))

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_capacity_positive ]

let () =
  Alcotest.run "capacity"
    [
      ( "model",
        [
          Alcotest.test_case "paper anchors" `Quick anchors;
          Alcotest.test_case "design ordering" `Quick design_ordering;
          Alcotest.test_case "monotone in participants" `Quick monotone_in_participants;
          Alcotest.test_case "rewrite variant effect" `Quick rewrite_variant_effect;
          Alcotest.test_case "gains positive" `Quick gains_always_positive;
          Alcotest.test_case "bottleneck names" `Quick bottleneck_names_sane;
          Alcotest.test_case "fewer senders helps" `Quick fewer_senders_more_meetings;
          Alcotest.test_case "invalid shapes" `Quick invalid_shapes_rejected;
          Alcotest.test_case "best design" `Quick best_design_picks_feasible;
        ] );
      ("properties", qsuite);
    ]
