(* AV1 dependency-descriptor tests: the L1T3 structure of paper Fig. 9. *)

module Dd = Av1.Dd

let template_layer_mapping () =
  (* paper: ids 0,1 = base layer; 2 = first enhancement; 3,4 = second *)
  Alcotest.(check bool) "tpl 0 -> T0" true (Dd.layer_of_template_l1t3 0 = Dd.T0);
  Alcotest.(check bool) "tpl 1 -> T0" true (Dd.layer_of_template_l1t3 1 = Dd.T0);
  Alcotest.(check bool) "tpl 2 -> T1" true (Dd.layer_of_template_l1t3 2 = Dd.T1);
  Alcotest.(check bool) "tpl 3 -> T2" true (Dd.layer_of_template_l1t3 3 = Dd.T2);
  Alcotest.(check bool) "tpl 4 -> T2" true (Dd.layer_of_template_l1t3 4 = Dd.T2)

let template_out_of_range () =
  Alcotest.(check bool) "tpl 9 rejected" true
    (try
       ignore (Dd.layer_of_template_l1t3 9);
       false
     with Rtp.Wire.Parse_error _ -> true)

let decode_target_inclusion () =
  (* 7.5 fps target keeps only T0; 15 keeps T0+T1; 30 keeps everything *)
  Alcotest.(check bool) "T0 in all" true
    (List.for_all
       (fun dt -> Dd.target_includes dt Dd.T0)
       [ Dd.DT_7_5fps; Dd.DT_15fps; Dd.DT_30fps ]);
  Alcotest.(check bool) "T1 not in 7.5" false (Dd.target_includes Dd.DT_7_5fps Dd.T1);
  Alcotest.(check bool) "T1 in 15" true (Dd.target_includes Dd.DT_15fps Dd.T1);
  Alcotest.(check bool) "T2 only in 30" true
    ((not (Dd.target_includes Dd.DT_15fps Dd.T2)) && Dd.target_includes Dd.DT_30fps Dd.T2)

let dropping_templates_halves_rate () =
  (* paper: dropping ids 3 and 4 reduces 30 fps to 15 fps *)
  let kept_at dt = List.filter (fun id -> Dd.template_in_target_l1t3 id dt) [ 0; 1; 2; 3; 4 ] in
  Alcotest.(check (list int)) "30 fps keeps all" [ 0; 1; 2; 3; 4 ] (kept_at Dd.DT_30fps);
  Alcotest.(check (list int)) "15 fps drops 3,4" [ 0; 1; 2 ] (kept_at Dd.DT_15fps);
  Alcotest.(check (list int)) "7.5 fps keeps base" [ 0; 1 ] (kept_at Dd.DT_7_5fps)

let fps_values () =
  Alcotest.(check (float 0.0)) "7.5" 7.5 (Dd.fps_of_target Dd.DT_7_5fps);
  Alcotest.(check (float 0.0)) "15" 15.0 (Dd.fps_of_target Dd.DT_15fps);
  Alcotest.(check (float 0.0)) "30" 30.0 (Dd.fps_of_target Dd.DT_30fps)

let target_index_roundtrip () =
  List.iter
    (fun dt -> Alcotest.(check bool) "index roundtrip" true (Dd.target_of_index (Dd.index_of_target dt) = dt))
    [ Dd.DT_7_5fps; Dd.DT_15fps; Dd.DT_30fps ];
  Alcotest.(check bool) "bad index" true
    (try
       ignore (Dd.target_of_index 3);
       false
     with Invalid_argument _ -> true)

let l1t3_cycle_pattern () =
  (* the 4-frame cycle is T0 T2 T1 T2 *)
  let layers =
    List.init 8 (fun i ->
        Dd.layer_of_template_l1t3 (Dd.l1t3_template ~keyframe:false ~frame_in_cycle:i))
  in
  Alcotest.(check bool) "cycle pattern" true
    (layers = [ Dd.T0; Dd.T2; Dd.T1; Dd.T2; Dd.T0; Dd.T2; Dd.T1; Dd.T2 ])

let keyframe_template () =
  Alcotest.(check int) "keyframe uses template 0" 0 (Dd.l1t3_template ~keyframe:true ~frame_in_cycle:0);
  Alcotest.(check int) "inter T0 uses template 1" 1 (Dd.l1t3_template ~keyframe:false ~frame_in_cycle:0)

let descriptor_roundtrip () =
  let dd =
    {
      Dd.start_of_frame = true;
      end_of_frame = false;
      template_id = 3;
      frame_number = 0xBEEF;
      structure = None;
    }
  in
  Alcotest.(check bool) "plain" true (Dd.equal dd (Dd.parse (Dd.serialize dd)))

let descriptor_with_structure_roundtrip () =
  let dd =
    {
      Dd.start_of_frame = true;
      end_of_frame = true;
      template_id = 0;
      frame_number = 7;
      structure = Some Dd.l1t3_structure;
    }
  in
  Alcotest.(check bool) "with structure" true (Dd.equal dd (Dd.parse (Dd.serialize dd)))

let frame_number_wrap () =
  Alcotest.(check int) "wraps" 0 (Dd.frame_number_succ 0xFFFF)

let prop_descriptor_roundtrip =
  QCheck.Test.make ~count:500 ~name:"descriptor parse . serialize = id"
    QCheck.(quad bool bool (int_bound 63) (int_bound 0xFFFF))
    (fun (start_of_frame, end_of_frame, template_id, frame_number) ->
      let dd = { Dd.start_of_frame; end_of_frame; template_id; frame_number; structure = None } in
      Dd.equal dd (Dd.parse (Dd.serialize dd)))

let prop_target_monotone =
  QCheck.Test.make ~count:100 ~name:"higher targets include more layers"
    QCheck.(pair (int_bound 2) (int_bound 4))
    (fun (dt_idx, tpl) ->
      let dt = Dd.target_of_index dt_idx in
      (* anything a target includes, every higher target includes too *)
      (not (Dd.template_in_target_l1t3 tpl dt))
      || List.for_all
           (fun higher -> Dd.template_in_target_l1t3 tpl (Dd.target_of_index higher))
           (List.filter (fun i -> i >= dt_idx) [ 0; 1; 2 ]))

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_descriptor_roundtrip; prop_target_monotone ]

let () =
  Alcotest.run "av1"
    [
      ( "l1t3",
        [
          Alcotest.test_case "template->layer mapping" `Quick template_layer_mapping;
          Alcotest.test_case "out of range" `Quick template_out_of_range;
          Alcotest.test_case "decode target inclusion" `Quick decode_target_inclusion;
          Alcotest.test_case "dropping templates" `Quick dropping_templates_halves_rate;
          Alcotest.test_case "fps values" `Quick fps_values;
          Alcotest.test_case "target index roundtrip" `Quick target_index_roundtrip;
          Alcotest.test_case "cycle pattern" `Quick l1t3_cycle_pattern;
          Alcotest.test_case "keyframe template" `Quick keyframe_template;
        ] );
      ( "descriptor",
        [
          Alcotest.test_case "roundtrip" `Quick descriptor_roundtrip;
          Alcotest.test_case "structure roundtrip" `Quick descriptor_with_structure_roundtrip;
          Alcotest.test_case "frame number wrap" `Quick frame_number_wrap;
        ] );
      ("properties", qsuite);
    ]
