(* Sequence-rewriting heuristic tests (paper §6.2, Fig. 12): masking of
   intentional gaps, loss/reorder handling, and the never-duplicate
   invariant the paper calls out as non-negotiable. *)

module Sr = Scallop.Seq_rewrite
module Dd = Av1.Dd

let fwd = function Sr.Forward s -> s | Sr.Drop -> Alcotest.fail "unexpected drop"
let is_drop = function Sr.Drop -> true | Sr.Forward _ -> false

(* A generated L1T3 stream: (seq, frame, sof, eof) with [ppf] packets per
   frame. Frame numbers align with the cycle (pos = frame mod 4). *)
let stream ~frames ~ppf =
  List.concat_map
    (fun f -> List.init ppf (fun i -> ((f * ppf) + i, f, i = 0, i = ppf - 1)))
    (List.init frames Fun.id)

let push rw (seq, frame, sof, eof) =
  Sr.on_packet rw ~seq ~frame ~start_of_frame:sof ~end_of_frame:eof

let cadence () =
  Alcotest.(check bool) "30 fps keeps all" true
    (List.for_all (fun f -> not (Sr.suppressed_by_cadence Dd.DT_30fps f)) [ 0; 1; 2; 3 ]);
  Alcotest.(check (list bool)) "15 fps drops T2 positions" [ false; true; false; true ]
    (List.map (Sr.suppressed_by_cadence Dd.DT_15fps) [ 0; 1; 2; 3 ]);
  Alcotest.(check (list bool)) "7.5 fps keeps only T0" [ false; true; true; true ]
    (List.map (Sr.suppressed_by_cadence Dd.DT_7_5fps) [ 0; 1; 2; 3 ])

let words_per_stream () =
  Alcotest.(check int) "S-LM" 3 (Sr.words_per_stream Sr.S_LM);
  Alcotest.(check int) "S-LR" 6 (Sr.words_per_stream Sr.S_LR)

(* With full quality nothing is suppressed: output = input. *)
let passthrough variant () =
  let rw = Sr.create variant ~target:Dd.DT_30fps in
  List.iter (fun p -> let (s, _, _, _) = p in Alcotest.(check int) "identity" s (fwd (push rw p)))
    (stream ~frames:12 ~ppf:3)

(* 15 fps: suppressed T2 frames produce gaps the rewriter must mask, so the
   receiver-visible sequence numbers are consecutive. *)
let masks_suppression variant () =
  let rw = Sr.create variant ~target:Dd.DT_15fps in
  let outs =
    List.filter_map
      (fun ((_, f, _, _) as p) ->
        if Sr.suppressed_by_cadence Dd.DT_15fps f then None else Some (fwd (push rw p)))
      (stream ~frames:20 ~ppf:3)
  in
  let rec consecutive = function
    | a :: (b :: _ as rest) -> b = a + 1 && consecutive rest
    | _ -> true
  in
  Alcotest.(check bool) "output consecutive" true (consecutive outs)

(* Genuine loss inside a kept frame must stay visible (NACKable). *)
let loss_leaves_gap variant () =
  let rw = Sr.create variant ~target:Dd.DT_15fps in
  let packets =
    stream ~frames:8 ~ppf:3
    |> List.filter (fun (_, f, _, _) -> not (Sr.suppressed_by_cadence Dd.DT_15fps f))
  in
  (* drop the middle packet of the 3rd kept frame *)
  let dropped = 7 in
  let outs =
    List.filteri (fun i _ -> i <> dropped) packets |> List.map (fun p -> fwd (push rw p))
  in
  let rec max_gap acc = function
    | a :: (b :: _ as rest) -> max_gap (max acc (b - a)) rest
    | _ -> acc
  in
  Alcotest.(check int) "one-seq hole survives" 2 (max_gap 0 outs)

let slm_tolerates_one_step_reorder () =
  let rw = Sr.create Sr.S_LM ~target:Dd.DT_30fps in
  ignore (fwd (push rw (0, 0, true, false)));
  ignore (fwd (push rw (2, 0, false, true)));
  Alcotest.(check int) "late by one forwarded" 1 (fwd (push rw (1, 0, false, false)))

let slm_drops_deeper_reorder () =
  (* once an offset is active, anything older than one step is unsafe *)
  let rw = Sr.create Sr.S_LM ~target:Dd.DT_15fps in
  ignore (push rw (0, 0, true, true));
  ignore (push rw (3, 2, true, true));
  (* offset = 2 (frame 1 suppressed); a deep-reordered resend of seq 0 *)
  Alcotest.(check bool) "dropped" true (is_drop (push rw (0, 0, true, true)))

let identity_passthrough_when_no_offset () =
  (* with no rewriting done yet the mapping is the identity, so even deep
     reordering (retransmissions) can pass through safely *)
  let rw = Sr.create Sr.S_LM ~target:Dd.DT_30fps in
  List.iter (fun p -> ignore (push rw p)) (stream ~frames:2 ~ppf:4);
  Alcotest.(check int) "old packet forwarded verbatim" 4 (fwd (push rw (4, 1, true, false)))

let slr_tolerates_in_frame_reorder () =
  let rw = Sr.create Sr.S_LR ~target:Dd.DT_30fps in
  ignore (push rw (0, 0, true, false));
  ignore (push rw (1, 0, false, false));
  ignore (push rw (4, 0, false, true));
  (* seqs 2 and 3 of the same frame arrive late and out of order *)
  Alcotest.(check int) "late in-frame ok" 3 (fwd (push rw (3, 0, false, false)));
  Alcotest.(check int) "more reorder ok" 2 (fwd (push rw (2, 0, false, false)))

let slr_drops_suppressed_straggler () =
  let rw = Sr.create Sr.S_LR ~target:Dd.DT_15fps in
  (* frames 0 (kept) then 2 (kept); a straggler of suppressed frame 1 *)
  ignore (push rw (0, 0, true, true));
  ignore (push rw (4, 2, true, true));
  Alcotest.(check bool) "straggler silenced" true (is_drop (push rw (2, 1, true, false)))

let duplicate_guard_after_mask () =
  (* S-LM masks a gap believed intentional; the "suppressed" packets then
     show up late (they were actually lost + retransmitted). Forwarding
     them with the advanced offset would duplicate sequence numbers. *)
  let rw = Sr.create Sr.S_LM ~target:Dd.DT_15fps in
  let out0 = fwd (push rw (0, 0, true, true)) in
  (* frame 1 is T2/suppressed: seqs 1,2 never arrive; frame 2 opens at 3 *)
  let out3 = fwd (push rw (3, 2, true, true)) in
  Alcotest.(check int) "gap masked" (out0 + 1) out3;
  (* now seq 2 arrives late: exactly one behind, but inside the masked
     region - must be dropped, not emitted as a duplicate *)
  Alcotest.(check bool) "masked straggler dropped" true (is_drop (push rw (2, 1, false, true)))

let offset_reported () =
  let rw = Sr.create Sr.S_LM ~target:Dd.DT_15fps in
  ignore (push rw (0, 0, true, true));
  ignore (push rw (5, 2, true, true));
  Alcotest.(check int) "offset = masked gap" 4 (Sr.offset rw)

(* --- Oracle --------------------------------------------------------------------- *)

let oracle_exact () =
  let o = Sr.Oracle.create () in
  Sr.Oracle.note_suppressed o 3;
  Sr.Oracle.note_suppressed o 4;
  Sr.Oracle.note_suppressed o 10;
  Alcotest.(check int) "before gaps" 2 (Sr.Oracle.on_packet o ~seq:2);
  Alcotest.(check int) "after first gap" 3 (Sr.Oracle.on_packet o ~seq:5);
  Alcotest.(check int) "after second gap" 8 (Sr.Oracle.on_packet o ~seq:11)

let oracle_out_of_order_queries () =
  let o = Sr.Oracle.create () in
  List.iter (Sr.Oracle.note_suppressed o) [ 1; 5; 9 ];
  Alcotest.(check int) "late query" 4 (Sr.Oracle.on_packet o ~seq:6);
  Alcotest.(check int) "earlier query" 2 (Sr.Oracle.on_packet o ~seq:3)

(* --- the invariant, property-tested over adversarial arrival orders --------------- *)

let arrival_gen =
  (* loss and reorder patterns over a 240-packet stream *)
  QCheck.(triple (int_bound 1000) (float_bound_inclusive 0.3) (float_bound_inclusive 0.2))

let run_invariant variant (seed, loss, reorder) =
  let rng = Scallop_util.Rng.create seed in
  let packets = stream ~frames:60 ~ppf:4 in
  let survivors =
    List.filter (fun _ -> not (Scallop_util.Rng.bernoulli rng loss)) packets
  in
  let keyed =
    List.mapi
      (fun i p ->
        let d = if Scallop_util.Rng.bernoulli rng reorder then 1 + Scallop_util.Rng.int rng 5 else 0 in
        (i + d, i, p))
      survivors
  in
  let arrivals = List.sort compare keyed |> List.map (fun (_, _, p) -> p) in
  let rw = Sr.create variant ~target:Dd.DT_15fps in
  let seen = Hashtbl.create 256 in
  List.for_all
    (fun ((seq, frame, _, _) as p) ->
      if Sr.suppressed_by_cadence Dd.DT_15fps frame then true
      else
        match push rw p with
        | Sr.Drop -> true
        | Sr.Forward out ->
            if Hashtbl.mem seen out && Hashtbl.find seen out <> seq then false
            else begin
              Hashtbl.replace seen out seq;
              true
            end)
    arrivals

let prop_no_duplicates_slm =
  QCheck.Test.make ~count:300 ~name:"S-LM never emits duplicate sequence numbers"
    arrival_gen (run_invariant Sr.S_LM)

let prop_no_duplicates_slr =
  QCheck.Test.make ~count:300 ~name:"S-LR never emits duplicate sequence numbers"
    arrival_gen (run_invariant Sr.S_LR)

let prop_clean_stream_consecutive =
  QCheck.Test.make ~count:50 ~name:"no loss -> consecutive output for any ppf"
    QCheck.(int_range 1 12)
    (fun ppf ->
      let rw = Sr.create Sr.S_LR ~target:Dd.DT_15fps in
      let outs =
        stream ~frames:24 ~ppf
        |> List.filter_map (fun ((_, f, _, _) as p) ->
               if Sr.suppressed_by_cadence Dd.DT_15fps f then None
               else match push rw p with Sr.Forward s -> Some s | Sr.Drop -> None)
      in
      let rec consecutive = function
        | a :: (b :: _ as rest) -> b = a + 1 && consecutive rest
        | _ -> true
      in
      consecutive outs)

(* --- simulcast splicing (the sister rewriter) --------------------------- *)

module Sc = Scallop.Simulcast

let sc_fwd = function
  | Sc.Forward { ssrc; seq; frame } -> (ssrc, seq, frame)
  | Sc.Drop -> Alcotest.fail "unexpected drop"

let simulcast_passthrough () =
  let sc = Sc.create ~renditions:[| 100; 200; 300 |] in
  let ssrc1, seq1, _ = sc_fwd (Sc.on_packet sc ~ssrc:100 ~seq:50 ~frame:10 ~keyframe_start:true) in
  Alcotest.(check int) "out ssrc" 100 ssrc1;
  Alcotest.(check int) "seq identity" 50 seq1;
  let _, seq2, _ = sc_fwd (Sc.on_packet sc ~ssrc:100 ~seq:51 ~frame:10 ~keyframe_start:false) in
  Alcotest.(check int) "continuous" 51 seq2

let simulcast_drops_inactive () =
  let sc = Sc.create ~renditions:[| 100; 200 |] in
  ignore (Sc.on_packet sc ~ssrc:100 ~seq:1 ~frame:1 ~keyframe_start:true);
  Alcotest.(check bool) "inactive dropped" true
    (Sc.on_packet sc ~ssrc:200 ~seq:900 ~frame:77 ~keyframe_start:false = Sc.Drop);
  Alcotest.(check bool) "unknown ssrc dropped" true
    (Sc.on_packet sc ~ssrc:999 ~seq:1 ~frame:1 ~keyframe_start:true = Sc.Drop)

let simulcast_switch_waits_for_keyframe () =
  let sc = Sc.create ~renditions:[| 100; 200 |] in
  ignore (Sc.on_packet sc ~ssrc:100 ~seq:10 ~frame:5 ~keyframe_start:true);
  ignore (Sc.on_packet sc ~ssrc:100 ~seq:11 ~frame:6 ~keyframe_start:false);
  Sc.request_switch sc 1;
  Alcotest.(check (option int)) "pending" (Some 1) (Sc.pending sc);
  (* non-keyframe packets of the target keep being dropped *)
  Alcotest.(check bool) "waits" true
    (Sc.on_packet sc ~ssrc:200 ~seq:500 ~frame:40 ~keyframe_start:false = Sc.Drop);
  let _, old_seq, _ = sc_fwd (Sc.on_packet sc ~ssrc:100 ~seq:12 ~frame:6 ~keyframe_start:false) in
  Alcotest.(check int) "old rendition still flows" 12 old_seq;
  (* the key frame triggers the splice, continuing seq and frame spaces *)
  let fssrc, fseq, fframe = sc_fwd (Sc.on_packet sc ~ssrc:200 ~seq:501 ~frame:41 ~keyframe_start:true) in
  Alcotest.(check int) "spliced ssrc" 100 fssrc;
  Alcotest.(check int) "seq continues" 13 fseq;
  Alcotest.(check int) "frame continues" 7 fframe;
  Alcotest.(check int) "now active" 1 (Sc.active sc);
  (* and the old rendition is silenced *)
  Alcotest.(check bool) "old silenced" true
    (Sc.on_packet sc ~ssrc:100 ~seq:13 ~frame:7 ~keyframe_start:false = Sc.Drop)

let simulcast_switch_back_and_forth_no_duplicates () =
  let sc = Sc.create ~renditions:[| 100; 200 |] in
  let seen = Hashtbl.create 64 in
  let note = function
    | Sc.Forward { seq; _ } ->
        if Hashtbl.mem seen seq then Alcotest.failf "duplicate out seq %d" seq;
        Hashtbl.replace seen seq ()
    | Sc.Drop -> ()
  in
  let s0 = ref 0 and s1 = ref 1000 and f0 = ref 0 and f1 = ref 500 in
  for round = 0 to 5 do
    Sc.request_switch sc (round mod 2);
    for i = 0 to 20 do
      incr s0; incr s1;
      if i mod 7 = 0 then begin incr f0; incr f1 end;
      note (Sc.on_packet sc ~ssrc:100 ~seq:!s0 ~frame:!f0 ~keyframe_start:(i mod 7 = 0));
      note (Sc.on_packet sc ~ssrc:200 ~seq:!s1 ~frame:!f1 ~keyframe_start:(i mod 7 = 0))
    done
  done

(* Simulcast invariant under random switch requests and random keyframe
   positions: output never reuses a sequence number, and the out-SSRC is
   constant. *)
let prop_simulcast_no_duplicates =
  QCheck.Test.make ~count:300 ~name:"simulcast splicing never duplicates"
    QCheck.(pair (int_bound 1000) (list_of_size Gen.(0 -- 20) (int_bound 2)))
    (fun (seed, switches) ->
      let rng = Scallop_util.Rng.create seed in
      let sc = Sc.create ~renditions:[| 10; 20; 30 |] in
      let seqs = [| 0; 5000; 20000 |] and frames = [| 0; 200; 400 |] in
      let seen = Hashtbl.create 512 in
      let switches = ref switches in
      let ok = ref true in
      for step = 0 to 400 do
        if step mod 20 = 0 then (
          match !switches with
          | s :: rest ->
              Sc.request_switch sc s;
              switches := rest
          | [] -> ());
        for r = 0 to 2 do
          seqs.(r) <- seqs.(r) + 1;
          let keyframe = Scallop_util.Rng.bernoulli rng 0.1 in
          if keyframe then frames.(r) <- frames.(r) + 1;
          match
            Sc.on_packet sc ~ssrc:((r + 1) * 10) ~seq:(seqs.(r) land 0xFFFF)
              ~frame:(frames.(r) land 0xFFFF) ~keyframe_start:keyframe
          with
          | Sc.Drop -> ()
          | Sc.Forward { ssrc; seq; _ } ->
              if ssrc <> 10 then ok := false;
              if Hashtbl.mem seen seq then ok := false else Hashtbl.replace seen seq ()
        done
      done;
      !ok)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_no_duplicates_slm;
      prop_no_duplicates_slr;
      prop_clean_stream_consecutive;
      prop_simulcast_no_duplicates;
    ]

let () =
  Alcotest.run "seq_rewrite"
    [
      ( "basics",
        [
          Alcotest.test_case "cadence" `Quick cadence;
          Alcotest.test_case "words per stream" `Quick words_per_stream;
          Alcotest.test_case "S-LM passthrough" `Quick (passthrough Sr.S_LM);
          Alcotest.test_case "S-LR passthrough" `Quick (passthrough Sr.S_LR);
          Alcotest.test_case "S-LM masks suppression" `Quick (masks_suppression Sr.S_LM);
          Alcotest.test_case "S-LR masks suppression" `Quick (masks_suppression Sr.S_LR);
          Alcotest.test_case "S-LM loss leaves gap" `Quick (loss_leaves_gap Sr.S_LM);
          Alcotest.test_case "S-LR loss leaves gap" `Quick (loss_leaves_gap Sr.S_LR);
          Alcotest.test_case "offset reported" `Quick offset_reported;
        ] );
      ( "reordering",
        [
          Alcotest.test_case "S-LM one-step reorder" `Quick slm_tolerates_one_step_reorder;
          Alcotest.test_case "S-LM deeper reorder dropped" `Quick slm_drops_deeper_reorder;
          Alcotest.test_case "identity passthrough" `Quick identity_passthrough_when_no_offset;
          Alcotest.test_case "S-LR in-frame reorder" `Quick slr_tolerates_in_frame_reorder;
          Alcotest.test_case "S-LR suppressed straggler" `Quick slr_drops_suppressed_straggler;
          Alcotest.test_case "duplicate guard after mask" `Quick duplicate_guard_after_mask;
        ] );
      ( "simulcast",
        [
          Alcotest.test_case "passthrough" `Quick simulcast_passthrough;
          Alcotest.test_case "drops inactive" `Quick simulcast_drops_inactive;
          Alcotest.test_case "switch at keyframe" `Quick simulcast_switch_waits_for_keyframe;
          Alcotest.test_case "no duplicates across switches" `Quick
            simulcast_switch_back_and_forth_no_duplicates;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "exact rewrite" `Quick oracle_exact;
          Alcotest.test_case "out-of-order queries" `Quick oracle_out_of_order_queries;
        ] );
      ("properties", qsuite);
    ]
