(* Codec model tests: SVC source pattern, packetization, decoder behaviour
   (the freeze/NACK semantics the paper's §6.2 design depends on). *)

module Rng = Scallop_util.Rng
module Dd = Av1.Dd
module Vs = Codec.Video_source
module As = Codec.Audio_source
module Rx = Codec.Video_receiver
module Rp = Codec.Rate_policy

let make_source ?(bitrate = 2_500_000) ?(keyframe_interval = 300) () =
  Vs.create (Rng.create 11)
    { (Vs.default_config ~ssrc:7) with target_bitrate_bps = bitrate; keyframe_interval }

let frames_of src n =
  List.init n (fun i -> Vs.next_frame src ~time_ns:(i * 33_333_333))

(* --- video source ------------------------------------------------------------- *)

let source_cycle_pattern () =
  let frames = frames_of (make_source ()) 8 in
  let layers = List.map (fun f -> f.Vs.layer) frames in
  Alcotest.(check bool) "L1T3 cycle" true
    (layers = [ Dd.T0; Dd.T2; Dd.T1; Dd.T2; Dd.T0; Dd.T2; Dd.T1; Dd.T2 ])

let source_first_frame_is_keyframe () =
  let frames = frames_of (make_source ()) 4 in
  Alcotest.(check bool) "first is key" true (List.hd frames).Vs.keyframe;
  Alcotest.(check bool) "others are not" true
    (List.for_all (fun f -> not f.Vs.keyframe) (List.tl frames))

let source_keyframe_carries_structure () =
  let frame = List.hd (frames_of (make_source ()) 1) in
  let first = List.hd frame.Vs.packets in
  match Rtp.Packet.find_extension first Dd.extension_id with
  | None -> Alcotest.fail "missing descriptor"
  | Some data ->
      Alcotest.(check bool) "structure present" true ((Dd.parse data).Dd.structure <> None)

let source_frame_numbers_increment () =
  let frames = frames_of (make_source ()) 10 in
  List.iteri (fun i f -> Alcotest.(check int) "frame number" i f.Vs.number) frames

let source_sequence_continuous () =
  let src = make_source () in
  let packets = List.concat_map (fun f -> f.Vs.packets) (frames_of src 20) in
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check int) "consecutive"
          (Rtp.Packet.seq_succ a.Rtp.Packet.sequence)
          b.Rtp.Packet.sequence;
        check rest
    | _ -> ()
  in
  check packets

let source_respects_mtu () =
  let src = make_source () in
  List.iter
    (fun f ->
      List.iter
        (fun p -> Alcotest.(check bool) "<= mtu" true (Bytes.length p.Rtp.Packet.payload <= 1160))
        f.Vs.packets)
    (frames_of src 20)

let source_bitrate_tracks_target () =
  let src = make_source ~bitrate:1_000_000 ~keyframe_interval:0 () in
  let frames = frames_of src 300 in
  let bytes = List.fold_left (fun acc f -> acc + f.Vs.size_bytes) 0 frames in
  let bps = float_of_int (bytes * 8) /. 10.0 in
  Alcotest.(check bool) "within 25% of target" true (bps > 0.75e6 && bps < 1.25e6)

let source_marker_on_last_packet () =
  let frame = List.hd (frames_of (make_source ()) 1) in
  let last = List.nth frame.Vs.packets (List.length frame.Vs.packets - 1) in
  Alcotest.(check bool) "marker" true last.Rtp.Packet.marker

let source_pli_forces_keyframe () =
  let src = make_source ~keyframe_interval:0 () in
  let _ = frames_of src 4 in
  Vs.request_keyframe src;
  let next = Vs.next_frame src ~time_ns:0 in
  Alcotest.(check bool) "keyframe on demand" true next.Vs.keyframe

let source_set_bitrate () =
  let src = make_source () in
  Vs.set_bitrate src 500_000;
  Alcotest.(check int) "updated" 500_000 (Vs.bitrate src);
  Vs.set_bitrate src 1;
  Alcotest.(check bool) "floored" true (Vs.bitrate src >= 50_000)

(* --- audio source ---------------------------------------------------------------- *)

let audio_cadence () =
  let src = As.create (Rng.create 3) (As.default_config ~ssrc:9) in
  let p1 = As.next_packet src ~time_ns:0 in
  let p2 = As.next_packet src ~time_ns:As.interval_ns in
  Alcotest.(check int) "seq increments" (Rtp.Packet.seq_succ p1.Rtp.Packet.sequence)
    p2.Rtp.Packet.sequence;
  Alcotest.(check bool) "48kHz timestamps move" true
    (p2.Rtp.Packet.timestamp > p1.Rtp.Packet.timestamp);
  Alcotest.(check bool) "size plausible" true
    (Bytes.length p1.Rtp.Packet.payload >= 32 && Bytes.length p1.Rtp.Packet.payload <= 200)

(* --- receiver / decoder ------------------------------------------------------------- *)

let feed rx frames = List.iter (fun f -> List.iter (Rx.receive rx ~time_ns:0) f.Vs.packets) frames

let feed_at rx time_ns frames =
  List.iter (fun f -> List.iter (Rx.receive rx ~time_ns) f.Vs.packets) frames

let rx_decodes_clean_stream () =
  let rx = Rx.create ~ssrc:7 () in
  feed rx (frames_of (make_source ()) 60);
  Alcotest.(check int) "all decoded" 60 (Rx.frames_decoded rx);
  Alcotest.(check int) "no freezes" 0 (Rx.freezes rx)

let rx_ignores_other_ssrc () =
  let rx = Rx.create ~ssrc:999 () in
  feed rx (frames_of (make_source ()) 10);
  Alcotest.(check int) "nothing" 0 (Rx.packets_received rx)

let rx_gap_triggers_nack () =
  let rx = Rx.create ~ssrc:7 ~nack_delay_ns:0 () in
  let frames = frames_of (make_source ()) 10 in
  (* drop one mid-stream packet entirely *)
  let all = List.concat_map (fun f -> f.Vs.packets) frames in
  List.iteri (fun i p -> if i <> 12 then Rx.receive rx ~time_ns:0 p) all;
  let nacks = Rx.poll_nacks rx ~time_ns:1_000_000 in
  Alcotest.(check int) "one missing seq" 1 (List.length nacks);
  Alcotest.(check int) "the dropped one" (List.nth all 12).Rtp.Packet.sequence (List.hd nacks)

let rx_retransmission_fills_gap () =
  let rx = Rx.create ~ssrc:7 ~nack_delay_ns:0 () in
  let all = List.concat_map (fun f -> f.Vs.packets) (frames_of (make_source ()) 10) in
  let held = List.nth all 12 in
  List.iteri (fun i p -> if i <> 12 then Rx.receive rx ~time_ns:0 p) all;
  Rx.receive rx ~time_ns:0 held;
  Alcotest.(check (list int)) "no nacks pending" [] (Rx.poll_nacks rx ~time_ns:1_000_000)

let rx_same_packet_twice_harmless () =
  let rx = Rx.create ~ssrc:7 () in
  let frames = frames_of (make_source ()) 5 in
  feed rx frames;
  (* replay the last frame's packets: pure retransmission duplicates *)
  List.iter (Rx.receive rx ~time_ns:0) (List.nth frames 4).Vs.packets;
  Alcotest.(check int) "no freeze" 0 (Rx.freezes rx);
  Alcotest.(check bool) "counted" true (Rx.duplicates rx > 0)

let rx_conflicting_duplicate_freezes () =
  (* the paper's catastrophic case: same sequence number, different frame *)
  let rx = Rx.create ~ssrc:7 () in
  let frames = frames_of (make_source ()) 5 in
  feed rx frames;
  let victim = List.hd (List.nth frames 2).Vs.packets in
  let forged =
    Rtp.Packet.make
      ~extensions:
        [
          {
            Rtp.Packet.id = Dd.extension_id;
            data =
              Dd.serialize
                {
                  Dd.start_of_frame = true;
                  end_of_frame = true;
                  template_id = 1;
                  frame_number = 999;
                  structure = None;
                };
          };
        ]
      ~payload_type:96 ~sequence:victim.Rtp.Packet.sequence ~timestamp:0 ~ssrc:7
      (Bytes.create 10)
  in
  Rx.receive rx ~time_ns:0 forged;
  Alcotest.(check bool) "frozen" true (Rx.frozen rx);
  Alcotest.(check int) "freeze counted" 1 (Rx.freezes rx)

let rx_keyframe_unfreezes () =
  let rx = Rx.create ~ssrc:7 () in
  let src = make_source ~keyframe_interval:0 () in
  let frames = frames_of src 5 in
  feed rx frames;
  (* freeze it: reuse a sequence number already seen, with different data *)
  let victim_seq = (List.hd (List.nth frames 2).Vs.packets).Rtp.Packet.sequence in
  let forged =
    Rtp.Packet.make
      ~extensions:
        [
          {
            Rtp.Packet.id = Dd.extension_id;
            data =
              Dd.serialize
                {
                  Dd.start_of_frame = true;
                  end_of_frame = true;
                  template_id = 1;
                  frame_number = 900;
                  structure = None;
                };
          };
        ]
      ~payload_type:96 ~sequence:victim_seq ~timestamp:0 ~ssrc:7 (Bytes.create 10)
  in
  Rx.receive rx ~time_ns:0 forged;
  Alcotest.(check bool) "frozen" true (Rx.frozen rx);
  Vs.request_keyframe src;
  (* a demanded key frame waits for the next cycle start (up to 4 frames) *)
  feed rx (frames_of src 4);
  Alcotest.(check bool) "recovered by keyframe" false (Rx.frozen rx)

let rx_layer_dropped_stream_decodes () =
  (* the SFU's 15 fps adaptation: T2 frames never arrive; survivors must
     still decode (their dependencies skip the dropped frames) *)
  let rx = Rx.create ~ssrc:7 () in
  let frames = frames_of (make_source ()) 40 in
  List.iter
    (fun f -> if f.Vs.layer <> Dd.T2 then List.iter (Rx.receive rx ~time_ns:0) f.Vs.packets)
    frames;
  Alcotest.(check int) "half the frames decoded" 20 (Rx.frames_decoded rx);
  Alcotest.(check int) "none undecodable" 0 (Rx.frames_undecodable rx)

let rx_missing_reference_undecodable () =
  let rx = Rx.create ~ssrc:7 () in
  let frames = frames_of (make_source ~keyframe_interval:0 ()) 100 in
  (* drop frame 4 (T0) permanently: the T0 reference chain breaks, and once
     the waiting window is exceeded the dependents count as undecodable *)
  List.iteri
    (fun i f -> if i <> 4 then List.iter (Rx.receive rx ~time_ns:0) f.Vs.packets)
    frames;
  Alcotest.(check bool) "some undecodable" true (Rx.frames_undecodable rx > 0);
  Alcotest.(check bool) "decoding stalled after break" true (Rx.frames_decoded rx < 20)

let rx_pli_on_starvation () =
  let rx = Rx.create ~ssrc:7 ~pli_timeout_ns:100 () in
  feed_at rx 0 (frames_of (make_source ()) 4);
  Alcotest.(check bool) "pli after starvation" true (Rx.poll_pli rx ~time_ns:1_000_000);
  Alcotest.(check bool) "throttled" false (Rx.poll_pli rx ~time_ns:1_000_050)

let rx_fps_series () =
  let rx = Rx.create ~ssrc:7 () in
  let src = make_source () in
  List.iteri
    (fun i f -> List.iter (Rx.receive rx ~time_ns:(i * 33_333_333)) f.Vs.packets)
    (frames_of src 90);
  let bins = Scallop_util.Timeseries.bins (Rx.fps_series rx) in
  Alcotest.(check bool) "roughly 30 fps in first bin" true
    (Array.length bins > 0 && snd bins.(0) >= 29.0 && snd bins.(0) <= 31.0)

(* --- audio receiver -------------------------------------------------------------------- *)

let audio_pkt ~seq ~ts = Rtp.Packet.make ~payload_type:111 ~sequence:seq ~timestamp:ts ~ssrc:9 (Bytes.create 128)

let audio_rx_counts_loss () =
  let rx = Codec.Audio_receiver.create ~ssrc:9 in
  List.iteri
    (fun i seq -> Codec.Audio_receiver.receive rx ~time_ns:(i * 20_000_000) (audio_pkt ~seq ~ts:(seq * 960)))
    [ 10; 11; 13; 14; 17 ];
  Alcotest.(check int) "received" 5 (Codec.Audio_receiver.packets_received rx);
  Alcotest.(check int) "lost" 3 (Codec.Audio_receiver.packets_lost rx);
  Alcotest.(check (float 0.001)) "rate" 0.375 (Codec.Audio_receiver.loss_rate rx)

let audio_rx_late_fills_gap () =
  let rx = Codec.Audio_receiver.create ~ssrc:9 in
  List.iteri
    (fun i seq -> Codec.Audio_receiver.receive rx ~time_ns:(i * 20_000_000) (audio_pkt ~seq ~ts:(seq * 960)))
    [ 1; 3; 2 ];
  Alcotest.(check int) "reorder recovered" 0 (Codec.Audio_receiver.packets_lost rx)

let audio_rx_duplicates_and_other_ssrc () =
  let rx = Codec.Audio_receiver.create ~ssrc:9 in
  Codec.Audio_receiver.receive rx ~time_ns:0 (audio_pkt ~seq:5 ~ts:0);
  Codec.Audio_receiver.receive rx ~time_ns:1 (audio_pkt ~seq:5 ~ts:0);
  Codec.Audio_receiver.receive rx ~time_ns:2
    (Rtp.Packet.make ~payload_type:111 ~sequence:6 ~timestamp:0 ~ssrc:999 (Bytes.create 10));
  Alcotest.(check int) "one fresh" 1 (Codec.Audio_receiver.packets_received rx);
  Alcotest.(check int) "duplicate counted" 1 (Codec.Audio_receiver.duplicates rx)

let audio_rx_jitter () =
  let rx = Codec.Audio_receiver.create ~ssrc:9 in
  (* perfectly paced packets -> jitter stays near zero *)
  for i = 0 to 99 do
    Codec.Audio_receiver.receive rx ~time_ns:(i * 20_000_000) (audio_pkt ~seq:i ~ts:(i * 960))
  done;
  Alcotest.(check bool) "paced jitter ~0" true (Codec.Audio_receiver.jitter_ms rx < 0.1);
  (* a 15 ms arrival spike moves the estimate *)
  Codec.Audio_receiver.receive rx ~time_ns:((100 * 20_000_000) + 15_000_000)
    (audio_pkt ~seq:100 ~ts:(100 * 960));
  Alcotest.(check bool) "spike visible" true (Codec.Audio_receiver.jitter_ms rx > 0.5)

(* --- rate policy ---------------------------------------------------------------------- *)

let policy_downgrades () =
  let t estimate = Rp.select_decode_target ~current:Dd.DT_30fps ~estimate_bps:estimate ~full_bitrate_bps:2_500_000 in
  Alcotest.(check bool) "plenty -> 30" true (t 3_000_000 = Dd.DT_30fps);
  Alcotest.(check bool) "mid -> 15" true (t 1_800_000 = Dd.DT_15fps);
  Alcotest.(check bool) "low -> 7.5" true (t 800_000 = Dd.DT_7_5fps)

let policy_upgrade_needs_headroom () =
  let from_75 estimate =
    Rp.select_decode_target ~current:Dd.DT_7_5fps ~estimate_bps:estimate ~full_bitrate_bps:2_500_000
  in
  (* 7.5 fps costs 937.5 kb/s: a bare affordability of 15 fps isn't enough *)
  Alcotest.(check bool) "barely affordable holds" true (from_75 1_000_000 = Dd.DT_7_5fps);
  Alcotest.(check bool) "headroom upgrades one step" true (from_75 1_600_000 = Dd.DT_15fps)

let policy_single_step_up () =
  let r =
    Rp.select_decode_target ~current:Dd.DT_7_5fps ~estimate_bps:10_000_000
      ~full_bitrate_bps:2_500_000
  in
  Alcotest.(check bool) "one step at a time" true (r = Dd.DT_15fps)

let policy_shares () =
  Alcotest.(check (float 1e-9)) "30" 1.0 (Rp.layer_bitrate_share Dd.DT_30fps);
  Alcotest.(check (float 1e-9)) "15" 0.625 (Rp.layer_bitrate_share Dd.DT_15fps);
  Alcotest.(check (float 1e-9)) "7.5" 0.375 (Rp.layer_bitrate_share Dd.DT_7_5fps)

let () =
  Alcotest.run "codec"
    [
      ( "video source",
        [
          Alcotest.test_case "cycle pattern" `Quick source_cycle_pattern;
          Alcotest.test_case "first frame keyframe" `Quick source_first_frame_is_keyframe;
          Alcotest.test_case "keyframe structure" `Quick source_keyframe_carries_structure;
          Alcotest.test_case "frame numbers" `Quick source_frame_numbers_increment;
          Alcotest.test_case "sequence continuity" `Quick source_sequence_continuous;
          Alcotest.test_case "mtu respected" `Quick source_respects_mtu;
          Alcotest.test_case "bitrate tracks target" `Quick source_bitrate_tracks_target;
          Alcotest.test_case "marker on last packet" `Quick source_marker_on_last_packet;
          Alcotest.test_case "pli forces keyframe" `Quick source_pli_forces_keyframe;
          Alcotest.test_case "set bitrate" `Quick source_set_bitrate;
        ] );
      ("audio source", [ Alcotest.test_case "cadence" `Quick audio_cadence ]);
      ( "receiver",
        [
          Alcotest.test_case "decodes clean stream" `Quick rx_decodes_clean_stream;
          Alcotest.test_case "ignores other ssrc" `Quick rx_ignores_other_ssrc;
          Alcotest.test_case "gap triggers nack" `Quick rx_gap_triggers_nack;
          Alcotest.test_case "retransmission fills gap" `Quick rx_retransmission_fills_gap;
          Alcotest.test_case "benign duplicate" `Quick rx_same_packet_twice_harmless;
          Alcotest.test_case "conflicting duplicate freezes" `Quick rx_conflicting_duplicate_freezes;
          Alcotest.test_case "keyframe unfreezes" `Quick rx_keyframe_unfreezes;
          Alcotest.test_case "layer-dropped stream decodes" `Quick rx_layer_dropped_stream_decodes;
          Alcotest.test_case "missing reference undecodable" `Quick rx_missing_reference_undecodable;
          Alcotest.test_case "pli on starvation" `Quick rx_pli_on_starvation;
          Alcotest.test_case "fps series" `Quick rx_fps_series;
        ] );
      ( "audio receiver",
        [
          Alcotest.test_case "counts loss" `Quick audio_rx_counts_loss;
          Alcotest.test_case "late packet fills gap" `Quick audio_rx_late_fills_gap;
          Alcotest.test_case "duplicates and ssrc filter" `Quick audio_rx_duplicates_and_other_ssrc;
          Alcotest.test_case "jitter" `Quick audio_rx_jitter;
        ] );
      ( "rate policy",
        [
          Alcotest.test_case "downgrades" `Quick policy_downgrades;
          Alcotest.test_case "upgrade needs headroom" `Quick policy_upgrade_needs_headroom;
          Alcotest.test_case "single step up" `Quick policy_single_step_up;
          Alcotest.test_case "shares" `Quick policy_shares;
        ] );
    ]
