(* WebRTC client endpoint tests, including a pure peer-to-peer call: the
   endpoint implements the full protocol machinery on its own, which is
   precisely why Scallop can pose as a peer (the P2P illusion). *)

module Addr = Scallop_util.Addr
module Rng = Scallop_util.Rng
module Engine = Netsim.Engine
module Network = Netsim.Network
module Link = Netsim.Link
module Client = Webrtc.Client

let setup () =
  let engine = Engine.create () in
  let rng = Rng.create 17 in
  let network = Network.create engine (Rng.split rng) in
  (engine, rng, network)

let mk_client engine network rng ~ip_str ?(config = Client.default_config) () =
  let ip = Addr.ip_of_string ip_str in
  Network.add_host network ~ip ();
  Client.create engine network (Rng.split rng) (config ~ip)

(* Two clients talking directly to each other: A's send connection targets
   B's receive connection and vice versa. *)
let p2p_pair ?config_a ?config_b () =
  let engine, rng, network = setup () in
  let a = mk_client engine network rng ~ip_str:"10.1.0.1" ?config:config_a () in
  let b = mk_client engine network rng ~ip_str:"10.1.0.2" ?config:config_b () in
  (* fixed ports so each side can predict its peer *)
  let a_send = 20_100 and b_recv = 20_200 and b_send = 20_300 and a_recv = 20_400 in
  let conn_b_recv =
    Client.add_recv_connection b ~local_port:b_recv
      ~remote:(Addr.v (Client.ip a) a_send) ~video_ssrc:111 ~audio_ssrc:112
  in
  let conn_a_send =
    Client.add_send_connection a ~local_port:a_send
      ~remote:(Addr.v (Client.ip b) b_recv) ~video_ssrc:111 ~audio_ssrc:112
  in
  let conn_a_recv =
    Client.add_recv_connection a ~local_port:a_recv
      ~remote:(Addr.v (Client.ip b) b_send) ~video_ssrc:221 ~audio_ssrc:222
  in
  let conn_b_send =
    Client.add_send_connection b ~local_port:b_send
      ~remote:(Addr.v (Client.ip a) a_recv) ~video_ssrc:221 ~audio_ssrc:222
  in
  (engine, network, (a, conn_a_send, conn_a_recv), (b, conn_b_send, conn_b_recv))

let p2p_call_works () =
  let engine, _net, (_, _, a_recv), (_, _, b_recv) = p2p_pair () in
  Engine.run engine ~until:(Engine.sec 5.0);
  List.iter
    (fun conn ->
      let rx = Option.get (Client.receiver conn) in
      Alcotest.(check bool) "near 30 fps" true (Codec.Video_receiver.frames_decoded rx > 120);
      Alcotest.(check int) "no freezes" 0 (Codec.Video_receiver.freezes rx);
      Alcotest.(check bool) "audio too" true (Client.audio_packets_received conn > 200))
    [ a_recv; b_recv ]

let stun_rtt_measured () =
  let engine, _net, (_, a_send, _), _ = p2p_pair () in
  Engine.run engine ~until:(Engine.sec 6.0);
  match Client.stun_rtt_ms a_send with
  | Some rtt ->
      (* two 5 ms propagation legs each way = ~20 ms *)
      Alcotest.(check bool) "plausible rtt" true (rtt > 15.0 && rtt < 40.0)
  | None -> Alcotest.fail "no STUN round trip measured"

let sender_reports_flow () =
  let engine, _net, (_, _, a_recv), _ = p2p_pair () in
  Engine.run engine ~until:(Engine.sec 5.0);
  (* ~520 ms cadence over 5 s, compound includes video+audio SRs *)
  Alcotest.(check bool) "SRs received" true (Client.srs_received a_recv >= 7)

let remb_throttles_sender () =
  let engine, network, (_, a_send, _), _ = p2p_pair () in
  Engine.run engine ~until:(Engine.sec 2.0);
  Alcotest.(check int) "starts at configured max" 2_500_000 (Client.video_bitrate a_send);
  (* B's downlink collapses; B's GCC tells A to slow down *)
  Link.set_rate (Network.downlink network ~ip:(Addr.ip_of_string "10.1.0.2")) 800_000.0;
  Engine.run engine ~until:(Engine.sec 25.0);
  Alcotest.(check bool) "sender slowed" true (Client.video_bitrate a_send < 1_500_000)

let nack_recovers_loss () =
  let engine, _net, (a, a_send, _), (_, _, b_recv) = p2p_pair () in
  ignore a;
  (* drop ~1% on the path from A to B *)
  Engine.run engine ~until:(Engine.sec 1.0);
  let a_up = Network.uplink _net ~ip:(Addr.ip_of_string "10.1.0.1") in
  Link.set_loss a_up 0.01;
  Engine.run engine ~until:(Engine.sec 15.0);
  Link.set_loss a_up 0.0;
  Engine.run engine ~until:(Engine.sec 17.0);
  Alcotest.(check bool) "sender retransmitted" true (Client.retransmissions a_send > 0);
  let rx = Option.get (Client.receiver b_recv) in
  Alcotest.(check bool) "losses recovered" true
    (Codec.Video_receiver.frames_decoded rx > 420);
  Alcotest.(check int) "no freezes" 0 (Codec.Video_receiver.freezes rx)

let pacing_spreads_frames () =
  let engine, _net, _, _ = p2p_pair () in
  (* watch inter-departure gaps on A's uplink wire *)
  let engine2, rng2, network2 = setup () in
  ignore engine;
  let a = mk_client engine2 network2 rng2 ~ip_str:"10.2.0.1" () in
  Network.add_host network2 ~ip:(Addr.ip_of_string "10.2.0.9") ();
  (* a minimal peer: answer connectivity checks so ICE completes and the
     held-back media starts flowing *)
  let sink = Addr.v (Addr.ip_of_string "10.2.0.9") 9 in
  Network.bind network2 sink (fun dgram ->
      match Rtp.Stun.parse dgram.Netsim.Dgram.payload with
      | exception _ -> ()
      | msg when msg.Rtp.Stun.cls = Rtp.Stun.Request ->
          let reply =
            Rtp.Stun.binding_success ~transaction_id:msg.Rtp.Stun.transaction_id
              ~mapped_ip:dgram.Netsim.Dgram.src.Addr.ip
              ~mapped_port:dgram.Netsim.Dgram.src.Addr.port
          in
          Network.send network2
            (Netsim.Dgram.v ~src:sink ~dst:dgram.Netsim.Dgram.src (Rtp.Stun.serialize reply))
      | _ -> ());
  let last_tx = ref 0 and min_gap = ref max_int and tx_count = ref 0 in
  Client.set_tx_hook a (fun ~time_ns dgram ->
      if Rtp.Demux.classify dgram.Netsim.Dgram.payload = Rtp.Demux.Rtp_media
         && Bytes.length dgram.Netsim.Dgram.payload > 500 then begin
        if !tx_count > 0 then min_gap := min !min_gap (time_ns - !last_tx);
        last_tx := time_ns;
        incr tx_count
      end);
  ignore
    (Client.add_send_connection a ~local_port:21_000
       ~remote:(Addr.v (Addr.ip_of_string "10.2.0.9") 9) ~video_ssrc:5 ~audio_ssrc:6);
  Engine.run engine2 ~until:(Engine.sec 2.0);
  Alcotest.(check bool) "sent packets" true (!tx_count > 100);
  Alcotest.(check bool) "video never bursts back-to-back" true (!min_gap >= 300_000)

let connection_close_stops_media () =
  let engine, _net, (a, a_send, _), (_, _, b_recv) = p2p_pair () in
  Engine.run engine ~until:(Engine.sec 2.0);
  let rx = Option.get (Client.receiver b_recv) in
  let before = Codec.Video_receiver.packets_received rx in
  Client.close_connection a a_send;
  Engine.run engine ~until:(Engine.sec 4.0);
  let after = Codec.Video_receiver.packets_received rx in
  (* nothing but in-flight stragglers after the close *)
  Alcotest.(check bool) "media stopped" true (after - before < 30)

let ice_gates_media () =
  (* a send connection towards a black hole: connectivity never confirms,
     so not a single media packet may leave *)
  let engine, rng, network = setup () in
  let a = mk_client engine network rng ~ip_str:"10.4.0.1" () in
  Network.add_host network ~ip:(Addr.ip_of_string "10.4.0.9") ();
  let rtp_sent = ref 0 in
  Client.set_tx_hook a (fun ~time_ns:_ dgram ->
      if Rtp.Demux.classify dgram.Netsim.Dgram.payload = Rtp.Demux.Rtp_media then incr rtp_sent);
  let conn =
    Client.add_send_connection a ~local_port:22_000
      ~remote:(Addr.v (Addr.ip_of_string "10.4.0.9") 9) ~video_ssrc:1 ~audio_ssrc:2
  in
  Engine.run engine ~until:(Engine.sec 5.0);
  Alcotest.(check bool) "never connected" false (Client.connected conn);
  Alcotest.(check int) "no media leaked" 0 !rtp_sent

let bye_sent_on_close () =
  let engine, _net, (a, a_send, _), (_, _, b_recv) = p2p_pair () in
  Engine.run engine ~until:(Engine.sec 2.0);
  let byes = ref 0 in
  Client.set_tx_hook a (fun ~time_ns:_ dgram ->
      match Rtp.Demux.classify dgram.Netsim.Dgram.payload with
      | Rtp.Demux.Rtcp_feedback ->
          List.iter
            (function Rtp.Rtcp.Bye _ -> incr byes | _ -> ())
            (Rtp.Rtcp.parse_compound dgram.Netsim.Dgram.payload)
      | _ -> ());
  Client.close_connection a a_send;
  ignore b_recv;
  Alcotest.(check int) "one BYE" 1 !byes

let fresh_ports_unique () =
  let engine, rng, network = setup () in
  let c = mk_client engine network rng ~ip_str:"10.3.0.1" () in
  let ports = List.init 100 (fun _ -> Client.fresh_port c) in
  Alcotest.(check int) "all distinct" 100 (List.length (List.sort_uniq compare ports))

let () =
  Alcotest.run "webrtc"
    [
      ( "p2p",
        [
          Alcotest.test_case "call works" `Quick p2p_call_works;
          Alcotest.test_case "stun rtt" `Quick stun_rtt_measured;
          Alcotest.test_case "sender reports" `Quick sender_reports_flow;
          Alcotest.test_case "remb throttles sender" `Quick remb_throttles_sender;
          Alcotest.test_case "nack recovers loss" `Quick nack_recovers_loss;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "pacing" `Quick pacing_spreads_frames;
          Alcotest.test_case "close stops media" `Quick connection_close_stops_media;
          Alcotest.test_case "fresh ports" `Quick fresh_ports_unique;
          Alcotest.test_case "ice gates media" `Quick ice_gates_media;
          Alcotest.test_case "bye on close" `Quick bye_sent_on_close;
        ] );
    ]
