(* End-to-end experiment assertions: each reproduction must exhibit the
   paper's qualitative result (in quick mode, to keep the suite fast; the
   bench binary runs the full-scale versions). *)

module Dd = Av1.Dd

let table1_split () =
  let r = Experiments.Table1.compute ~quick:true () in
  Alcotest.(check bool) "packets mostly data plane (paper 96.46%)" true
    (r.Experiments.Table1.data_plane_packet_fraction > 0.94);
  Alcotest.(check bool) "bytes almost entirely data plane (paper 99.65%)" true
    (r.Experiments.Table1.data_plane_byte_fraction > 0.99)

let fig14_staircase () =
  let r = Experiments.Fig14.compute ~quick:true () in
  Alcotest.(check int) "no freezes" 0 r.Experiments.Fig14.freezes;
  Alcotest.(check bool) "starts at full rate" true (r.Experiments.Fig14.initial_fps > 25.0);
  Alcotest.(check bool) "first step down" true
    (r.Experiments.Fig14.mid_fps < 22.0 && r.Experiments.Fig14.mid_fps > 10.0);
  Alcotest.(check bool) "second step down" true (r.Experiments.Fig14.late_fps < 11.0);
  Alcotest.(check bool) "ends at base layer" true
    (r.Experiments.Fig14.final_target = Dd.DT_7_5fps)

let fig15_gain_range () =
  let r = Experiments.Fig15.compute () in
  Alcotest.(check bool) "min gain near 7x" true
    (r.Experiments.Fig15.min_gain > 5.0 && r.Experiments.Fig15.min_gain < 10.0);
  Alcotest.(check bool) "max gain near 210x" true
    (r.Experiments.Fig15.max_gain > 180.0 && r.Experiments.Fig15.max_gain < 240.0);
  Alcotest.(check bool) "two-party spike" true (r.Experiments.Fig15.two_party_gain > 80.0)

let fig16_always_ahead () =
  let r = Experiments.Fig16.compute () in
  Alcotest.(check bool) "Scallop ahead everywhere" true r.Experiments.Fig16.always_ahead

let fig17_anchors () =
  let r = Experiments.Fig17.compute () in
  Alcotest.(check bool) "two-party ~533K" true
    (r.Experiments.Fig17.two_party > 500_000 && r.Experiments.Fig17.two_party < 560_000);
  let p3 = List.hd r.Experiments.Fig17.points in
  Alcotest.(check bool) "NRA ~128K" true (p3.Experiments.Fig17.nra > 120_000);
  Alcotest.(check bool) "RA-R ~42.7K" true
    (p3.Experiments.Fig17.ra_r > 40_000 && p3.Experiments.Fig17.ra_r < 46_000);
  match List.find_opt (fun p -> p.Experiments.Fig17.participants = 10) r.Experiments.Fig17.points with
  | Some p10 ->
      Alcotest.(check bool) "RA-SR(10p) ~4.3K" true
        (p10.Experiments.Fig17.ra_sr > 4_000 && p10.Experiments.Fig17.ra_sr < 4_700)
  | None -> Alcotest.fail "missing N=10"

let fig18_overhead_shape () =
  let r = Experiments.Fig18.compute ~quick:true () in
  let at loss =
    List.find (fun p -> Float.abs (p.Experiments.Fig18.loss -. loss) < 1e-9) r.Experiments.Fig18.points
  in
  List.iter
    (fun p -> Alcotest.(check int) "never duplicates" 0 p.Experiments.Fig18.duplicates)
    r.Experiments.Fig18.points;
  Alcotest.(check bool) "<5% at 10% loss (paper)" true ((at 0.1).Experiments.Fig18.overhead_slr < 0.05);
  Alcotest.(check bool) "<10% at 20% loss (paper ~7.5%)" true
    ((at 0.2).Experiments.Fig18.overhead_slr < 0.10);
  Alcotest.(check bool) "<20% at 40% loss (paper)" true ((at 0.4).Experiments.Fig18.overhead_slr < 0.20);
  Alcotest.(check bool) "bounded under bursty loss too" true
    ((at 0.2).Experiments.Fig18.overhead_slr_bursty < 0.20);
  (* S-LM trades memory for overhead: it must be the worse of the two *)
  Alcotest.(check bool) "S-LM above S-LR under loss" true
    ((at 0.2).Experiments.Fig18.overhead_slm > (at 0.2).Experiments.Fig18.overhead_slr)

let fig19_latency_ratios () =
  let r = Experiments.Fig19.compute ~quick:true () in
  Alcotest.(check bool) "median ratio double digit (paper 26.8x)" true
    (r.Experiments.Fig19.median_ratio > 10.0);
  Alcotest.(check bool) "p99 ratio (paper 8.5x)" true (r.Experiments.Fig19.p99_ratio > 4.0)

let fig2_streams () =
  let r = Experiments.Fig2.compute ~quick:true () in
  Alcotest.(check bool) "~200 at 10 participants" true
    (r.Experiments.Fig2.streams_at_10 > 120 && r.Experiments.Fig2.streams_at_10 <= 260);
  Alcotest.(check bool) "700+ at 25" true (r.Experiments.Fig2.streams_at_25 > 700)

let fig22_reduction () =
  let r = Experiments.Fig22.compute ~quick:true () in
  Alcotest.(check bool) "two orders of magnitude (paper ~284x)" true
    (r.Experiments.Fig22.reduction > 200.0)

let table3_fits () =
  let r = Experiments.Table3.compute ~quick:true () in
  Alcotest.(check bool) "stages fit" true r.Experiments.Table3.stages_fit;
  Alcotest.(check bool) "max egress ~197 Gb/s" true
    (Float.abs (r.Experiments.Table3.egress_max_gbps -. 197.0) < 2.0)

let fig23_enhancement_vanishes () =
  let r = Experiments.Fig23_25.compute ~quick:true () in
  Alcotest.(check bool) "T2 present before" true
    (r.Experiments.Fig23_25.a_enhancement_share_before > 0.2);
  Alcotest.(check bool) "T2 gone after" true
    (r.Experiments.Fig23_25.a_enhancement_share_after < 0.02)

let fig3_4_collapse () =
  let r = Experiments.Fig3_4.compute ~quick:true () in
  let series = r.Experiments.Fig3_4.series in
  let early = List.hd (List.filter (fun s -> s.Experiments.Fig3_4.participants = 30) series) in
  let late = List.hd (List.filter (fun s -> s.Experiments.Fig3_4.participants = 100) series) in
  Alcotest.(check bool) "healthy early" true (early.Experiments.Fig3_4.mean_fps > 25.0);
  Alcotest.(check bool) "collapsed late" true (late.Experiments.Fig3_4.mean_fps < 15.0);
  Alcotest.(check bool) "jitter grows" true
    (late.Experiments.Fig3_4.jitter_p95_ms > early.Experiments.Fig3_4.jitter_p95_ms)

let ablation_filter () =
  let r = Experiments.Ablations.filter_ablation ~quick:true () in
  Alcotest.(check bool) "filter preserves the sender's rate" true
    (r.Experiments.Ablations.sender_bitrate_filtered > 2_000_000);
  Alcotest.(check bool) "naive forwarding drags the sender down" true
    (float_of_int r.Experiments.Ablations.sender_bitrate_naive
    < 0.7 *. float_of_int r.Experiments.Ablations.sender_bitrate_filtered)

let ablation_rewrite () =
  let r = Experiments.Ablations.rewrite_ablation ~quick:true () in
  Alcotest.(check bool) "rewriting masks nearly all gaps" true
    (r.Experiments.Ablations.nacks_with_rewrite < 100);
  Alcotest.(check bool) "raw gaps NACK storm" true
    (r.Experiments.Ablations.nacks_without_rewrite
    > 20 * (r.Experiments.Ablations.nacks_with_rewrite + 1));
  Alcotest.(check bool) "both still decode at the adapted rate" true
    (Float.abs
       (r.Experiments.Ablations.fps_with_rewrite
       -. r.Experiments.Ablations.fps_without_rewrite)
    < 3.0)

let feedback_modes_load () =
  let r = Experiments.Feedback_modes.compute ~quick:true () in
  (* the paper's argument: TWCC floods the switch CPU relative to REMB *)
  Alcotest.(check bool) "TWCC at least 5x the agent load" true
    (r.Experiments.Feedback_modes.load_ratio > 5.0);
  Alcotest.(check bool) "REMB stays light" true
    (r.Experiments.Feedback_modes.remb_cpu_pps < 60.0)

let simulcast_splices () =
  let r = Experiments.Simulcast_exp.compute ~quick:true () in
  Alcotest.(check int) "no freezes" 0 r.Experiments.Simulcast_exp.freezes;
  Alcotest.(check bool) "full fps on both" true
    (r.Experiments.Simulcast_exp.fast_fps > 27.0 && r.Experiments.Simulcast_exp.slow_fps > 27.0);
  Alcotest.(check bool) "cheaper rendition for the slow receiver" true
    (r.Experiments.Simulcast_exp.slow_kbps < 0.6 *. r.Experiments.Simulcast_exp.fast_kbps)

let table2_structure () =
  let r = Experiments.Table2.compute ~quick:true () in
  (* 2+3 participants all sending video+audio = 10 media SSRCs *)
  Alcotest.(check int) "rtp streams" 10 r.Experiments.Table2.rtp_streams;
  Alcotest.(check bool) "flows both ways" true (r.Experiments.Table2.flows > 10);
  Alcotest.(check bool) "media-dominated byte rate" true (r.Experiments.Table2.mbit_per_s > 5.0)

let replay_headline () =
  let r = Experiments.Replay.compute ~quick:true () in
  Alcotest.(check bool) "packets mostly data plane (paper 96.5%)" true
    (r.Experiments.Replay.data_plane_packet_fraction > 0.955);
  Alcotest.(check bool) "bytes almost entirely data plane (paper 99.7%)" true
    (r.Experiments.Replay.data_plane_byte_fraction > 0.995);
  Alcotest.(check bool) "real churn exercised" true
    (r.Experiments.Replay.joins > 20 && r.Experiments.Replay.leaves > 5
    && r.Experiments.Replay.migrations > 5);
  Alcotest.(check int) "no freezes under churn" 0 r.Experiments.Replay.freezes

let registry_complete () =
  (* every artefact of the paper's evaluation is registered *)
  let ids = List.map (fun e -> e.Experiments.Registry.id) Experiments.Registry.all in
  List.iter
    (fun id -> Alcotest.(check bool) (id ^ " present") true (List.mem id ids))
    [ "fig2"; "fig3_4"; "tab1"; "fig14"; "fig15"; "fig16"; "fig17"; "fig18"; "fig19";
      "tab2"; "tab3"; "fig20_21"; "fig22"; "fig23_25"; "ablations"; "feedback_modes"; "simulcast"; "replay" ];
  Alcotest.(check bool) "find works" true (Experiments.Registry.find "fig18" <> None);
  Alcotest.(check bool) "unknown id" true (Experiments.Registry.find "fig99" = None)

let () =
  Alcotest.run "experiments"
    [
      ( "fast",
        [
          Alcotest.test_case "registry complete" `Quick registry_complete;
          Alcotest.test_case "fig15 gain range" `Quick fig15_gain_range;
          Alcotest.test_case "fig16 always ahead" `Quick fig16_always_ahead;
          Alcotest.test_case "fig17 anchors" `Quick fig17_anchors;
          Alcotest.test_case "fig18 overhead shape" `Quick fig18_overhead_shape;
          Alcotest.test_case "fig2 streams" `Quick fig2_streams;
          Alcotest.test_case "fig22 reduction" `Quick fig22_reduction;
          Alcotest.test_case "table3 fits" `Quick table3_fits;
        ] );
      ( "simulated",
        [
          Alcotest.test_case "table1 split" `Quick table1_split;
          Alcotest.test_case "replay headline" `Quick replay_headline;
          Alcotest.test_case "fig14 staircase" `Quick fig14_staircase;
          Alcotest.test_case "fig19 latency ratios" `Quick fig19_latency_ratios;
          Alcotest.test_case "fig23 enhancement vanishes" `Quick fig23_enhancement_vanishes;
          Alcotest.test_case "ablation: feedback filter" `Quick ablation_filter;
          Alcotest.test_case "ablation: sequence rewriting" `Quick ablation_rewrite;
          Alcotest.test_case "feedback modes load" `Quick feedback_modes_load;
          Alcotest.test_case "table2 structure" `Quick table2_structure;
          Alcotest.test_case "simulcast splices" `Quick simulcast_splices;
          Alcotest.test_case "fig3_4 collapse" `Slow fig3_4_collapse;
        ] );
    ]
