(* Software split-proxy SFU baseline tests. *)

module Addr = Scallop_util.Addr
module Rng = Scallop_util.Rng
module Engine = Netsim.Engine
module Network = Netsim.Network
module Link = Netsim.Link

let fast = { Link.default with rate_bps = infinity; propagation_ns = 100_000 }

type stack = {
  engine : Engine.t;
  rng : Rng.t;
  network : Network.t;
  server : Sfu.Server.t;
}

let make ?(cpu = { Netsim.Cpu_queue.default_server with cores = 8 }) () =
  let engine = Engine.create () in
  let rng = Rng.create 3 in
  let network = Network.create engine (Rng.split rng) in
  let ip = Addr.ip_of_string "10.0.0.9" in
  Network.add_host network ~ip ~uplink:fast ~downlink:fast ();
  let server = Sfu.Server.create engine network (Rng.split rng) ~ip ~cpu () in
  { engine; rng; network; server }

let add_client st ~index ?(downlink = Link.default) () =
  let ip = Addr.ip_of_string (Printf.sprintf "10.0.2.%d" (index + 1)) in
  Network.add_host st.network ~ip ~downlink ();
  Webrtc.Client.create st.engine st.network (Rng.split st.rng)
    (Webrtc.Client.default_config ~ip)

let receivers_of client =
  Webrtc.Client.connections client |> List.filter_map Webrtc.Client.receiver

let run st s = Engine.run st.engine ~until:(Engine.now st.engine + Engine.sec s)

let three_party_decodes () =
  let st = make () in
  let meeting = Sfu.Server.create_meeting st.server in
  let clients = List.init 3 (fun i -> add_client st ~index:i ()) in
  List.iter (fun c -> ignore (Sfu.Server.join st.server ~meeting ~client:c ~send_media:true)) clients;
  run st 6.0;
  List.iter
    (fun c ->
      let rxs = receivers_of c in
      Alcotest.(check int) "two streams" 2 (List.length rxs);
      List.iter
        (fun rx ->
          Alcotest.(check bool) "decodes" true (Codec.Video_receiver.frames_decoded rx > 140);
          Alcotest.(check int) "no freezes" 0 (Codec.Video_receiver.freezes rx))
        rxs)
    clients

let reorigination_no_gaps () =
  (* the split proxy re-originates sequence numbers: even with adaptation,
     receivers never see gaps (no NACK churn) *)
  let st = make () in
  let meeting = Sfu.Server.create_meeting st.server in
  let sender = add_client st ~index:0 () in
  let slow = add_client st ~index:1 ~downlink:{ Link.default with rate_bps = 1.5e6 } () in
  ignore (Sfu.Server.join st.server ~meeting ~client:sender ~send_media:true);
  ignore (Sfu.Server.join st.server ~meeting ~client:slow ~send_media:false);
  run st 15.0;
  List.iter
    (fun rx -> Alcotest.(check int) "no freezes at reduced quality" 0 (Codec.Video_receiver.freezes rx))
    (receivers_of slow)

let stream_leg_accounting () =
  let st = make () in
  let meeting = Sfu.Server.create_meeting st.server in
  let clients = List.init 4 (fun i -> add_client st ~index:i ()) in
  List.iter (fun c -> ignore (Sfu.Server.join st.server ~meeting ~client:c ~send_media:true)) clients;
  (* 4 participants all sending, 2 media types: 2 * 4 * 4 = 32 legs *)
  Alcotest.(check int) "legs" 32 (Sfu.Server.out_stream_count st.server)

let leave_releases_legs () =
  let st = make () in
  let meeting = Sfu.Server.create_meeting st.server in
  let clients = List.init 3 (fun i -> add_client st ~index:i ()) in
  let ids =
    List.map (fun c -> Sfu.Server.join st.server ~meeting ~client:c ~send_media:true) clients
  in
  let before = Sfu.Server.out_stream_count st.server in
  Sfu.Server.leave st.server (List.hd ids);
  Alcotest.(check bool) "legs released" true (Sfu.Server.out_stream_count st.server < before)

let every_packet_through_cpu () =
  let st = make () in
  let meeting = Sfu.Server.create_meeting st.server in
  let clients = List.init 2 (fun i -> add_client st ~index:i ()) in
  List.iter (fun c -> ignore (Sfu.Server.join st.server ~meeting ~client:c ~send_media:true)) clients;
  run st 3.0;
  (* in + out legs both cost CPU work: processed exceeds packets sent by clients *)
  Alcotest.(check bool) "software touches everything" true
    (Sfu.Server.packets_processed st.server > 1500);
  Alcotest.(check bool) "bytes counted" true (Sfu.Server.bytes_processed st.server > 1_000_000)

let overload_degrades () =
  let st =
    make
      ~cpu:
        { Netsim.Cpu_queue.default_server with cores = 1; service_ns_per_packet = 400_000 }
      ()
  in
  let meeting = Sfu.Server.create_meeting st.server in
  let clients = List.init 6 (fun i -> add_client st ~index:i ()) in
  List.iter (fun c -> ignore (Sfu.Server.join st.server ~meeting ~client:c ~send_media:true)) clients;
  run st 8.0;
  Alcotest.(check bool) "cpu saturated" true (Sfu.Server.cpu_utilization st.server > 0.9);
  Alcotest.(check bool) "work dropped" true (Sfu.Server.cpu_dropped st.server > 0)

(* --- capacity model ------------------------------------------------------------ *)

let capacity_anchors () =
  (* the two published anchors both follow from the 38,400-leg calibration *)
  Alcotest.(check int) "10-party all-send" 192
    (Sfu.Capacity.meetings_supported ~participants:10 ~senders:10 ~media_types:2 ());
  Alcotest.(check int) "two-party" 4800
    (Sfu.Capacity.meetings_supported ~participants:2 ~senders:2 ~media_types:2 ())

let capacity_scales_with_cores () =
  Alcotest.(check int) "16 cores = half" 96
    (Sfu.Capacity.meetings_supported ~cores:16 ~participants:10 ~senders:10 ~media_types:2 ())

let capacity_leg_formula () =
  Alcotest.(check int) "legs 10p all-send" 200
    (Sfu.Capacity.stream_legs ~participants:10 ~senders:10 ~media_types:2);
  Alcotest.(check int) "legs one sender" 20
    (Sfu.Capacity.stream_legs ~participants:10 ~senders:1 ~media_types:2);
  Alcotest.(check bool) "invalid senders" true
    (try
       ignore (Sfu.Capacity.stream_legs ~participants:4 ~senders:5 ~media_types:2);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "sfu"
    [
      ( "server",
        [
          Alcotest.test_case "three-party decodes" `Quick three_party_decodes;
          Alcotest.test_case "re-origination no gaps" `Quick reorigination_no_gaps;
          Alcotest.test_case "stream leg accounting" `Quick stream_leg_accounting;
          Alcotest.test_case "leave releases legs" `Quick leave_releases_legs;
          Alcotest.test_case "all packets through cpu" `Quick every_packet_through_cpu;
          Alcotest.test_case "overload degrades" `Quick overload_degrades;
        ] );
      ( "capacity",
        [
          Alcotest.test_case "paper anchors" `Quick capacity_anchors;
          Alcotest.test_case "scales with cores" `Quick capacity_scales_with_cores;
          Alcotest.test_case "leg formula" `Quick capacity_leg_formula;
        ] );
    ]
