(* Receiver-side Google Congestion Control tests. *)

module G = Gcc.Estimator

(* Feed [seconds] of a 30 fps stream; [delay_of i] maps frame index to a
   one-way delay in ns (growing delay = queue building = overuse). *)
let drive ?(gcc = G.create ()) ~seconds ~delay_of () =
  let frames = int_of_float (seconds *. 30.0) in
  for i = 0 to frames - 1 do
    let departure = i * 33_333_333 in
    let arrival = departure + delay_of i in
    let rtp_ts = departure / 11111 in
    for p = 0 to 8 do
      G.on_packet gcc ~time_ns:(arrival + (p * 500_000)) ~rtp_ts ~size:1160
    done
  done;
  gcc

let stable_no_congestion () =
  let gcc = drive ~seconds:20.0 ~delay_of:(fun _ -> 5_000_000) () in
  Alcotest.(check bool) "no overuse" true (G.detector_state gcc <> G.Overuse);
  (* capped at 1.5x the ~2.5 Mb/s incoming rate, never collapses *)
  Alcotest.(check bool) "estimate healthy" true (G.estimate_bps gcc > 2_000_000)

let estimate_never_below_floor () =
  let gcc = drive ~seconds:10.0 ~delay_of:(fun i -> i * 1_000_000) () in
  Alcotest.(check bool) "floor" true (G.estimate_bps gcc >= 50_000)

let overuse_on_growing_delay () =
  let gcc = G.create () in
  (* steady for 5s, then delay grows 6 ms per frame (heavy queue build-up) *)
  let _ = drive ~gcc ~seconds:5.0 ~delay_of:(fun _ -> 5_000_000) () in
  let before = G.estimate_bps gcc in
  let frames0 = 150 in
  for i = 0 to 149 do
    let departure = (frames0 + i) * 33_333_333 in
    let arrival = departure + 5_000_000 + (i * 6_000_000) in
    let rtp_ts = departure / 11111 in
    for p = 0 to 8 do
      G.on_packet gcc ~time_ns:(arrival + (p * 500_000)) ~rtp_ts ~size:1160
    done
  done;
  Alcotest.(check bool) "estimate cut" true (G.estimate_bps gcc < before)

let remb_cadence () =
  let gcc = drive ~seconds:5.0 ~delay_of:(fun _ -> 1_000_000) () in
  let count = ref 0 in
  for ms = 0 to 4_999 do
    match G.poll_remb gcc ~time_ns:(ms * 1_000_000) with
    | Some _ -> incr count
    | None -> ()
  done;
  (* one REMB per 440 ms window *)
  Alcotest.(check bool) "cadence" true (!count >= 10 && !count <= 13)

let remb_immediate_on_drop () =
  let gcc = G.create () in
  ignore (G.poll_remb gcc ~time_ns:0);
  (* nothing new shortly after... *)
  Alcotest.(check bool) "throttled" true (G.poll_remb gcc ~time_ns:50_000_000 = None);
  (* ...unless the estimate collapses, then a REMB goes out immediately *)
  let _ = drive ~gcc ~seconds:5.0 ~delay_of:(fun i -> i * 3_000_000) () in
  Alcotest.(check bool) "estimate dropped" true (G.estimate_bps gcc < 3_000_000)

let receive_rate_measured () =
  let gcc = drive ~seconds:3.0 ~delay_of:(fun _ -> 0) () in
  let rate = G.receive_rate_bps gcc ~time_ns:(3 * 1_000_000_000) in
  (* 30 fps x 9 packets x 1160 B = 2.5 Mb/s *)
  Alcotest.(check bool) "about 2.5 Mb/s" true (rate > 2.0e6 && rate < 3.1e6)

let bounds_respected () =
  let gcc = G.create ~initial_bps:100_000 ~min_bps:80_000 ~max_bps:150_000 () in
  let _ = drive ~gcc ~seconds:10.0 ~delay_of:(fun _ -> 0) () in
  Alcotest.(check bool) "max clamp" true (G.estimate_bps gcc <= 150_000)

let () =
  Alcotest.run "gcc"
    [
      ( "estimator",
        [
          Alcotest.test_case "stable without congestion" `Quick stable_no_congestion;
          Alcotest.test_case "floor respected" `Quick estimate_never_below_floor;
          Alcotest.test_case "overuse on growing delay" `Quick overuse_on_growing_delay;
          Alcotest.test_case "remb cadence" `Quick remb_cadence;
          Alcotest.test_case "remb immediate on drop" `Quick remb_immediate_on_drop;
          Alcotest.test_case "receive rate" `Quick receive_rate_measured;
          Alcotest.test_case "bounds" `Quick bounds_respected;
        ] );
    ]
