(* Byte-exact wire-format tests: RTP, RTCP, STUN, demux. *)

module Wire = Rtp.Wire
module Packet = Rtp.Packet
module Rtcp = Rtp.Rtcp
module Stun = Rtp.Stun
module Demux = Rtp.Demux

(* --- Wire reader/writer --------------------------------------------------- *)

let wire_roundtrip () =
  let w = Wire.Writer.create () in
  Wire.Writer.u8 w 0xAB;
  Wire.Writer.u16 w 0x1234;
  Wire.Writer.u24 w 0x56789A;
  Wire.Writer.u32_int w 0xDEADBEEF;
  let r = Wire.Reader.of_bytes (Wire.Writer.contents w) in
  Alcotest.(check int) "u8" 0xAB (Wire.Reader.u8 r);
  Alcotest.(check int) "u16" 0x1234 (Wire.Reader.u16 r);
  Alcotest.(check int) "u24" 0x56789A (Wire.Reader.u24 r);
  Alcotest.(check int) "u32" 0xDEADBEEF (Wire.Reader.u32_int r);
  Alcotest.(check bool) "eof" true (Wire.Reader.eof r)

let wire_truncation () =
  let r = Wire.Reader.of_bytes (Bytes.create 1) in
  Alcotest.(check bool) "truncated u16 raises" true
    (try
       ignore (Wire.Reader.u16 r);
       false
     with Wire.Parse_error _ -> true)

let wire_peek () =
  let r = Wire.Reader.of_bytes (Bytes.of_string "\x42") in
  Alcotest.(check int) "peek" 0x42 (Wire.Reader.peek_u8 r);
  Alcotest.(check int) "peek does not consume" 0x42 (Wire.Reader.u8 r)

let wire_masking () =
  let w = Wire.Writer.create () in
  Wire.Writer.u8 w 0x1FF;
  let r = Wire.Reader.of_bytes (Wire.Writer.contents w) in
  Alcotest.(check int) "u8 masked" 0xFF (Wire.Reader.u8 r)

(* --- RTP packets ------------------------------------------------------------ *)

let mk_packet ?marker ?extensions ?(payload = "hello media") () =
  Packet.make ?marker ?extensions ~payload_type:96 ~sequence:12345 ~timestamp:0xABCDE
    ~ssrc:0xCAFE (Bytes.of_string payload)

let rtp_basic_roundtrip () =
  let p = mk_packet ~marker:true () in
  let p' = Packet.parse (Packet.serialize p) in
  Alcotest.(check bool) "roundtrip" true (Packet.equal p p')

let rtp_extension_roundtrip () =
  let extensions = [ { Packet.id = 1; data = Bytes.of_string "\x01\x02\x03" } ] in
  let p = mk_packet ~extensions () in
  let p' = Packet.parse (Packet.serialize p) in
  Alcotest.(check bool) "ext roundtrip" true (Packet.equal p p');
  Alcotest.(check bool) "ext found" true (Packet.find_extension p' 1 <> None)

let rtp_two_byte_profile () =
  (* an element longer than 16 bytes forces the two-byte header profile *)
  let extensions = [ { Packet.id = 5; data = Bytes.create 20 } ] in
  let p = mk_packet ~extensions () in
  let p' = Packet.parse (Packet.serialize p) in
  Alcotest.(check bool) "two-byte roundtrip" true (Packet.equal p p')

let rtp_multiple_extensions () =
  let extensions =
    [
      { Packet.id = 1; data = Bytes.of_string "abc" };
      { Packet.id = 2; data = Bytes.of_string "defgh" };
      { Packet.id = 14; data = Bytes.of_string "i" };
    ]
  in
  let p = mk_packet ~extensions () in
  Alcotest.(check bool) "multi ext" true (Packet.equal p (Packet.parse (Packet.serialize p)))

let rtp_empty_payload () =
  let p = mk_packet ~payload:"" () in
  Alcotest.(check bool) "empty payload" true (Packet.equal p (Packet.parse (Packet.serialize p)))

let rtp_wire_size_exact () =
  let p = mk_packet ~extensions:[ { Packet.id = 1; data = Bytes.of_string "abcd" } ] () in
  Alcotest.(check int) "wire_size = serialized length" (Bytes.length (Packet.serialize p))
    (Packet.wire_size p)

let rtp_bad_version () =
  let buf = Bytes.make 12 '\x00' in
  Alcotest.(check bool) "version 0 rejected" true
    (try
       ignore (Packet.parse buf);
       false
     with Wire.Parse_error _ -> true)

let rtp_with_sequence () =
  let p = mk_packet () in
  Alcotest.(check int) "rewritten" 99 (Packet.with_sequence p 99).Packet.sequence;
  Alcotest.(check int) "masked" 0 (Packet.with_sequence p 0x10000).Packet.sequence

(* --- sequence arithmetic ----------------------------------------------------- *)

let seq_arithmetic () =
  Alcotest.(check int) "succ wraps" 0 (Packet.seq_succ 0xFFFF);
  Alcotest.(check int) "add wraps" 4 (Packet.seq_add 0xFFFE 6);
  Alcotest.(check int) "sub simple" 5 (Packet.seq_sub 10 5);
  Alcotest.(check int) "sub wrap" 6 (Packet.seq_sub 2 0xFFFC);
  Alcotest.(check int) "sub negative" (-6) (Packet.seq_sub 0xFFFC 2);
  Alcotest.(check bool) "newer across wrap" true (Packet.seq_newer 3 0xFFFE);
  Alcotest.(check bool) "not newer" false (Packet.seq_newer 0xFFFE 3)

(* --- RTCP ---------------------------------------------------------------------- *)

let rtcp_roundtrip name packet =
  Alcotest.test_case name `Quick (fun () ->
      let p' = Rtcp.parse (Rtcp.serialize packet) in
      Alcotest.(check bool) name true (Rtcp.equal packet p'))

let report_block =
  {
    Rtcp.ssrc = 0x1111;
    fraction_lost = 12;
    cumulative_lost = 345;
    highest_seq = 67890;
    jitter = 42;
    last_sr = 0xAABB;
    dlsr = 0xCCDD;
  }

let sr =
  Rtcp.Sender_report
    {
      ssrc = 0xAA;
      info = { ntp_sec = 100; ntp_frac = 200; rtp_ts = 300; packet_count = 4; octet_count = 5 };
      reports = [ report_block ];
    }

let rr = Rtcp.Receiver_report { ssrc = 0xBB; reports = [ report_block; report_block ] }
let sdes = Rtcp.Sdes [ (0xCC, [ Rtcp.Cname "client-one" ]) ]
let bye = Rtcp.Bye { ssrcs = [ 1; 2; 3 ]; reason = Some "leaving" }
let pli = Rtcp.Pli { sender_ssrc = 1; media_ssrc = 2 }
let remb = Rtcp.Remb { sender_ssrc = 3; bitrate_bps = 2_500_000; ssrcs = [ 7; 8 ] }

let nack_simple = Rtcp.Nack { sender_ssrc = 1; media_ssrc = 2; lost = [ 100 ] }
let nack_bitmap = Rtcp.Nack { sender_ssrc = 1; media_ssrc = 2; lost = [ 100; 101; 105; 116 ] }
let nack_spread = Rtcp.Nack { sender_ssrc = 1; media_ssrc = 2; lost = [ 10; 200; 3000 ] }

let twcc =
  Rtcp.Twcc
    { sender_ssrc = 9; media_ssrc = 10; base_seq = 500; fb_count = 3; deltas = [ 0; 4; 133; 7; 255 ] }

let rtcp_compound () =
  let packets = [ rr; remb ] in
  let parsed = Rtcp.parse_compound (Rtcp.serialize_compound packets) in
  Alcotest.(check int) "two packets" 2 (List.length parsed);
  Alcotest.(check bool) "equal" true (List.for_all2 Rtcp.equal packets parsed)

let rtcp_remb_precision () =
  (* mantissa is 18 bits: large bitrates are approximated but within 2^-18 *)
  let bitrate = 123_456_789 in
  match Rtcp.parse (Rtcp.serialize (Rtcp.Remb { sender_ssrc = 0; bitrate_bps = bitrate; ssrcs = [] })) with
  | Rtcp.Remb { bitrate_bps; _ } ->
      let err = Float.abs (float_of_int (bitrate_bps - bitrate)) /. float_of_int bitrate in
      Alcotest.(check bool) "within mantissa precision" true (err < 1.0 /. 131072.0)
  | _ -> Alcotest.fail "not a REMB"

let rtcp_packet_types () =
  Alcotest.(check int) "SR" 200 (Rtcp.packet_type sr);
  Alcotest.(check int) "RR" 201 (Rtcp.packet_type rr);
  Alcotest.(check int) "SDES" 202 (Rtcp.packet_type sdes);
  Alcotest.(check int) "BYE" 203 (Rtcp.packet_type bye);
  Alcotest.(check int) "NACK" 205 (Rtcp.packet_type nack_simple);
  Alcotest.(check int) "PLI/REMB" 206 (Rtcp.packet_type pli)

(* --- STUN ------------------------------------------------------------------------ *)

let tid = Bytes.of_string "0123456789ab"

let stun_request_roundtrip () =
  let m = Stun.binding_request ~username:"user" ~priority:12345 ~transaction_id:tid () in
  Alcotest.(check bool) "roundtrip" true (Stun.equal m (Stun.parse (Stun.serialize m)))

let stun_success_roundtrip () =
  let m = Stun.binding_success ~transaction_id:tid ~mapped_ip:0x0A000001 ~mapped_port:54321 in
  let m' = Stun.parse (Stun.serialize m) in
  Alcotest.(check bool) "roundtrip" true (Stun.equal m m');
  match m'.Stun.attributes with
  | [ Stun.Xor_mapped_address { ip; port } ] ->
      Alcotest.(check int) "ip survives xor" 0x0A000001 ip;
      Alcotest.(check int) "port survives xor" 54321 port
  | _ -> Alcotest.fail "missing xor-mapped address"

let stun_class_encoding () =
  List.iter
    (fun cls ->
      let m = { Stun.cls; method_ = 0x001; transaction_id = tid; attributes = [] } in
      let m' = Stun.parse (Stun.serialize m) in
      Alcotest.(check bool) "class preserved" true (m'.Stun.cls = cls))
    [ Stun.Request; Stun.Success_response; Stun.Error_response; Stun.Indication ]

let stun_detection () =
  let m = Stun.binding_request ~transaction_id:tid () in
  Alcotest.(check bool) "is_stun" true (Stun.is_stun (Stun.serialize m));
  Alcotest.(check bool) "rtp is not stun" false
    (Stun.is_stun (Packet.serialize (mk_packet ())));
  Alcotest.(check bool) "short buffer" false (Stun.is_stun (Bytes.create 4))

let stun_ice_attributes () =
  let m =
    {
      Stun.cls = Stun.Request;
      method_ = 0x001;
      transaction_id = tid;
      attributes = [ Stun.Ice_controlling 0x0123456789ABCDEFL; Stun.Use_candidate ];
    }
  in
  Alcotest.(check bool) "ice attrs roundtrip" true (Stun.equal m (Stun.parse (Stun.serialize m)))

let stun_bad_cookie () =
  let buf = Stun.serialize (Stun.binding_request ~transaction_id:tid ()) in
  Bytes.set buf 4 '\x00';
  Alcotest.(check bool) "bad cookie rejected" true
    (try
       ignore (Stun.parse buf);
       false
     with Wire.Parse_error _ -> true)

(* --- demux ------------------------------------------------------------------------- *)

let demux_classification () =
  let check what expected buf =
    Alcotest.(check bool) what true (Demux.classify buf = expected)
  in
  check "rtp" Demux.Rtp_media (Packet.serialize (mk_packet ()));
  check "rtcp" Demux.Rtcp_feedback (Rtcp.serialize_compound [ rr; remb ]);
  check "stun" Demux.Stun_packet (Stun.serialize (Stun.binding_request ~transaction_id:tid ()));
  check "garbage" Demux.Unknown (Bytes.of_string "\xFF\xFF\xFF\xFF");
  check "empty" Demux.Unknown Bytes.empty

let demux_rtcp_type () =
  Alcotest.(check (option int)) "first pt" (Some 201)
    (Demux.rtcp_packet_type (Rtcp.serialize_compound [ rr; remb ]));
  Alcotest.(check (option int)) "rtp has none" None
    (Demux.rtcp_packet_type (Packet.serialize (mk_packet ())))

let demux_rtp_high_payload_type () =
  (* payload type 111 (audio) must not be mistaken for RTCP *)
  let p = Packet.make ~payload_type:111 ~sequence:1 ~timestamp:2 ~ssrc:3 (Bytes.create 4) in
  Alcotest.(check bool) "pt 111 is rtp" true (Demux.classify (Packet.serialize p) = Demux.Rtp_media);
  (* marker bit set on payload type 96 -> second byte 0xE0, still RTP *)
  let m = Packet.make ~marker:true ~payload_type:96 ~sequence:1 ~timestamp:2 ~ssrc:3 (Bytes.create 4) in
  Alcotest.(check bool) "marker is rtp" true (Demux.classify (Packet.serialize m) = Demux.Rtp_media)

(* --- qcheck ----------------------------------------------------------------------------- *)

let gen_extension =
  QCheck.Gen.(
    map2
      (fun id len -> { Packet.id; data = Bytes.create (len + 1) })
      (1 -- 13) (0 -- 15))

(* RFC 5761: payload types 64-95 are forbidden when RTP and RTCP share a
   port (their marker-bit form collides with RTCP packet types), so the
   generator only produces mux-safe payload types, as real stacks do. *)
let gen_payload_type = QCheck.Gen.(oneof [ 0 -- 63; 96 -- 127 ])

let gen_packet =
  QCheck.Gen.(
    map
      (fun (marker, pt, seq, (ts, ssrc, exts, payload_len)) ->
        Packet.make ~marker ~extensions:exts ~payload_type:pt ~sequence:seq ~timestamp:ts
          ~ssrc (Bytes.create payload_len))
      (quad bool gen_payload_type (0 -- 0xFFFF)
         (quad (0 -- 0xFFFFFF) (0 -- 0xFFFFFF) (list_size (0 -- 3) gen_extension) (0 -- 1400))))

let prop_rtp_roundtrip =
  QCheck.Test.make ~count:500 ~name:"rtp parse . serialize = id"
    (QCheck.make gen_packet)
    (fun p -> Packet.equal p (Packet.parse (Packet.serialize p)))

let prop_nack_roundtrip =
  QCheck.Test.make ~count:300 ~name:"nack lost-list roundtrip"
    QCheck.(list_of_size Gen.(1 -- 30) (int_bound 0x3FFF))
    (fun lost ->
      let n = Rtcp.Nack { sender_ssrc = 1; media_ssrc = 2; lost } in
      Rtcp.equal n (Rtcp.parse (Rtcp.serialize n)))

let prop_seq_sub_inverse =
  QCheck.Test.make ~count:500 ~name:"seq_add/seq_sub inverse"
    QCheck.(pair (int_bound 0xFFFF) (int_bound 0x7FFF))
    (fun (s, d) -> Packet.seq_sub (Packet.seq_add s d) s = d)

let prop_demux_never_confuses =
  QCheck.Test.make ~count:300 ~name:"serialized rtp always classified rtp"
    (QCheck.make gen_packet)
    (fun p -> Demux.classify (Packet.serialize p) = Demux.Rtp_media)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_rtp_roundtrip; prop_nack_roundtrip; prop_seq_sub_inverse; prop_demux_never_confuses ]

let () =
  Alcotest.run "rtp"
    [
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick wire_roundtrip;
          Alcotest.test_case "truncation" `Quick wire_truncation;
          Alcotest.test_case "peek" `Quick wire_peek;
          Alcotest.test_case "masking" `Quick wire_masking;
        ] );
      ( "rtp",
        [
          Alcotest.test_case "basic roundtrip" `Quick rtp_basic_roundtrip;
          Alcotest.test_case "extension roundtrip" `Quick rtp_extension_roundtrip;
          Alcotest.test_case "two-byte profile" `Quick rtp_two_byte_profile;
          Alcotest.test_case "multiple extensions" `Quick rtp_multiple_extensions;
          Alcotest.test_case "empty payload" `Quick rtp_empty_payload;
          Alcotest.test_case "wire size exact" `Quick rtp_wire_size_exact;
          Alcotest.test_case "bad version" `Quick rtp_bad_version;
          Alcotest.test_case "with_sequence" `Quick rtp_with_sequence;
          Alcotest.test_case "seq arithmetic" `Quick seq_arithmetic;
        ] );
      ( "rtcp",
        [
          rtcp_roundtrip "sender report" sr;
          rtcp_roundtrip "receiver report" rr;
          rtcp_roundtrip "sdes" sdes;
          rtcp_roundtrip "bye" bye;
          rtcp_roundtrip "pli" pli;
          rtcp_roundtrip "remb" remb;
          rtcp_roundtrip "nack simple" nack_simple;
          rtcp_roundtrip "nack bitmap" nack_bitmap;
          rtcp_roundtrip "nack spread" nack_spread;
          rtcp_roundtrip "twcc" twcc;
          Alcotest.test_case "compound" `Quick rtcp_compound;
          Alcotest.test_case "remb precision" `Quick rtcp_remb_precision;
          Alcotest.test_case "packet types" `Quick rtcp_packet_types;
        ] );
      ( "stun",
        [
          Alcotest.test_case "request roundtrip" `Quick stun_request_roundtrip;
          Alcotest.test_case "success roundtrip" `Quick stun_success_roundtrip;
          Alcotest.test_case "class encoding" `Quick stun_class_encoding;
          Alcotest.test_case "detection" `Quick stun_detection;
          Alcotest.test_case "ice attributes" `Quick stun_ice_attributes;
          Alcotest.test_case "bad cookie" `Quick stun_bad_cookie;
        ] );
      ( "demux",
        [
          Alcotest.test_case "classification" `Quick demux_classification;
          Alcotest.test_case "rtcp type" `Quick demux_rtcp_type;
          Alcotest.test_case "high payload types" `Quick demux_rtp_high_payload_type;
        ] );
      ("properties", qsuite);
    ]
